"""Regression tests for the snapshot-restore cache-invalidation hole.

The analysis context keys every cached fact to the graph's mutation
``generation``.  Generations alone stop identifying states once a
snapshot restore rewinds the counter: fresh mutations on the restored
graph re-use generation numbers the pre-restore lineage already spent,
so a context synced at generation ``G`` could watch a restore land
*below* ``G``, see new edits climb back past ``G``, and then serve
summaries computed against procedure bodies that no longer exist.

The fix stamps every restore into a fresh lineage epoch
(``ICFG.restore_token``) with provenance (``restored_from_token``,
``restored_generation``); the context only trusts a new epoch when the
restore landed exactly on the cached state, and rebinds otherwise.
"""

from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.context import AnalysisContext
from repro.analysis.query import Query
from repro.ir.expr import VarId
from repro.ir.nodes import NopNode
from repro.robustness.snapshot import ICFGSnapshot

CONFIG = AnalysisConfig(budget=100_000)

SOURCE = """
    global err = 0;
    proc may_fail(v) {
        if (v < 0) { err = 1; return 0; }
        err = 0;
        return v;
    }
    proc wrapper(v) {
        return may_fail(v);
    }
    proc main() {
        var a = wrapper(input());
        if (err == 1) { print 1; }
        var b = wrapper(input());
        if (err == 1) { print 2; }
    }
"""


def populated_context(icfg):
    context = AnalysisContext()
    context.bind(icfg)
    branch = next(b.id for b in icfg.branch_nodes() if b.proc == "main")
    analyze_branch(icfg, branch, CONFIG, context=context)
    assert context.summary_count() > 0
    return context


def touch(icfg, proc):
    icfg.add_node(NopNode(icfg.new_id(), proc))


def test_restore_below_cached_generation_drops_the_cache():
    """The original hole: snapshot below the cached generation, restore,
    then climb the generation back past the cached one with edits that
    never touch the summarized callee.  The generation guard alone would
    keep the (now stale) entries; the lineage check must not."""
    icfg = build(SOURCE)
    context = populated_context(icfg)
    snapshot = ICFGSnapshot.take(icfg)

    # Advance the cache past the snapshot: dirty the callee and commit.
    touch(icfg, "may_fail")
    context.commit(icfg)
    cached_generation = context.generation
    assert cached_generation == icfg.generation
    branch = next(b.id for b in icfg.branch_nodes() if b.proc == "main")
    analyze_branch(icfg, branch, CONFIG, context=context)
    assert context.summary_count() > 0

    # A heal-style restore rewinds below the cached generation...
    snapshot.restore(into=icfg)
    assert icfg.generation < cached_generation
    # ...and unrelated edits climb back past it on the new lineage.
    while icfg.generation <= cached_generation:
        touch(icfg, "main")

    # Same generation ordering the old guard accepted — but the cached
    # summaries describe a may_fail body this lineage never had.
    context.commit(icfg)
    assert context.summary_count() == 0
    assert context.in_sync(icfg)  # rebound, not wedged
    q = Query(VarId(None, "err"), "==", 1)
    exit_id = icfg.procs["may_fail"].exits[0]
    assert context.lookup_summary(icfg, "may_fail", exit_id, q) is None


def test_restore_onto_the_cached_state_keeps_the_cache():
    """A rollback that lands exactly on the cached (token, generation)
    is the benign, common case: the cache adopts the new epoch and every
    entry survives."""
    icfg = build(SOURCE)
    context = populated_context(icfg)
    stored = context.summary_count()
    snapshot = ICFGSnapshot.take(icfg)

    touch(icfg, "may_fail")      # uncommitted transaction...
    snapshot.restore(into=icfg)  # ...rolled back
    context.rollback(icfg)

    assert context.summary_count() == stored
    assert context.in_sync(icfg)
    second = [b.id for b in icfg.branch_nodes() if b.proc == "main"][1]
    result = analyze_branch(icfg, second, CONFIG, context=context)
    assert result.stats.summary_cache_hits > 0


def test_restore_onto_a_foreign_generation_rebinds():
    """Restoring a snapshot from *before* the cached state (same lineage,
    different generation) must resynchronise rather than trust entries
    for bodies the restored graph does not have."""
    icfg = build(SOURCE)
    context = populated_context(icfg)
    snapshot = ICFGSnapshot.take(icfg)
    touch(icfg, "may_fail")
    context.commit(icfg)         # cache now ahead of the snapshot

    snapshot.restore(into=icfg)
    context.rollback(icfg)

    assert context.summary_count() == 0
    assert context.in_sync(icfg)


def test_clone_carries_the_lineage_stamp():
    icfg = build(SOURCE)
    context = populated_context(icfg)
    snapshot = ICFGSnapshot.take(icfg)
    touch(icfg, "main")
    snapshot.restore(into=icfg)
    clone = icfg.clone()
    assert clone.restore_token == icfg.restore_token
    assert clone.restored_generation == icfg.restored_generation
    assert clone.restored_from_token == icfg.restored_from_token
    context.rollback(icfg)
    assert context.in_sync(icfg) and context.in_sync(clone)
