import pytest

from repro.analysis.facts import ValueSet, decide
from repro.ir.ops import RelOp


def brute_set(value_set, lo=-20, hi=20):
    return {v for v in range(lo, hi + 1) if value_set.contains(v)}


def test_from_relop_matches_semantics():
    for relop in RelOp:
        for const in (-2, 0, 3):
            vs = ValueSet.from_relop(relop, const)
            for v in range(-10, 10):
                assert vs.contains(v) == relop.evaluate(v, const)


def test_constructors():
    assert ValueSet.singleton(5).contains(5)
    assert not ValueSet.singleton(5).contains(4)
    assert ValueSet.nonzero().contains(-7)
    assert not ValueSet.nonzero().contains(0)
    assert ValueSet.unsigned_range().contains(0)
    assert ValueSet.unsigned_range().contains(255)
    assert not ValueSet.unsigned_range().contains(256)
    assert not ValueSet.unsigned_range().contains(-1)


def test_empty_interval_rejected():
    with pytest.raises(ValueError):
        ValueSet(3, 2)


def test_moot_exclusion_normalized_away():
    assert ValueSet(0, 5, exclude=9) == ValueSet(0, 5)


def test_subset_basic_intervals():
    assert ValueSet(1, 3).is_subset_of(ValueSet(0, 5))
    assert not ValueSet(0, 5).is_subset_of(ValueSet(1, 3))
    assert ValueSet(lo=3).is_subset_of(ValueSet(lo=0))
    assert not ValueSet(lo=0).is_subset_of(ValueSet(lo=3))


def test_subset_with_exclusions():
    # [0,5] \ {5} fits into [0,4].
    assert ValueSet(0, 5, exclude=5).is_subset_of(ValueSet(0, 4))
    # [0,5] \ {0} fits into [1,5].
    assert ValueSet(0, 5, exclude=0).is_subset_of(ValueSet(1, 5))
    # But [0,5] does not fit into [0,4].
    assert not ValueSet(0, 5).is_subset_of(ValueSet(0, 4))
    # Outer exclusion blocks containment when it is an element.
    assert not ValueSet(0, 5).is_subset_of(ValueSet(0, 5, exclude=3))
    assert ValueSet(0, 5, exclude=3).is_subset_of(ValueSet(0, 5, exclude=3))


def test_copoint_subset_rules():
    nonzero = ValueSet.nonzero()
    assert nonzero.is_subset_of(ValueSet())            # Z\{0} ⊆ Z
    assert nonzero.is_subset_of(nonzero)
    assert not nonzero.is_subset_of(ValueSet(lo=1))    # negatives stick out
    assert not ValueSet().is_subset_of(nonzero)


def test_disjointness():
    assert ValueSet(0, 3).is_disjoint_from(ValueSet(4, 9))
    assert not ValueSet(0, 4).is_disjoint_from(ValueSet(4, 9))
    assert ValueSet.singleton(0).is_disjoint_from(ValueSet.nonzero())
    assert not ValueSet.nonzero().is_disjoint_from(ValueSet.nonzero())
    # Width-2 intersection emptied by the two exclusions.
    assert ValueSet(0, 1, exclude=0).is_disjoint_from(
        ValueSet(0, 1, exclude=1))


def test_subset_and_disjoint_against_brute_force():
    samples = [
        ValueSet(0, 0), ValueSet(-1, 1), ValueSet(0, 5, exclude=2),
        ValueSet(lo=0), ValueSet(hi=-1), ValueSet.nonzero(),
        ValueSet.everything_but(3), ValueSet(2, 2), ValueSet(),
        ValueSet(lo=1, exclude=4), ValueSet(hi=5, exclude=0),
    ]
    for a in samples:
        for b in samples:
            sa, sb = brute_set(a), brute_set(b)
            # Brute-force over a window: only check when the window is
            # decisive (unbounded sides agree by construction of pairs).
            if a.is_subset_of(b):
                assert sa <= sb, f"{a} claimed subset of {b}"
            if a.is_disjoint_from(b):
                assert not (sa & sb), f"{a} claimed disjoint from {b}"


def test_decide_true_false_none():
    fact = ValueSet.unsigned_range()           # v in [0,255]
    assert decide(fact, RelOp.GE, 0) is True
    assert decide(fact, RelOp.LT, 0) is False
    assert decide(fact, RelOp.EQ, 7) is None

    deref = ValueSet.nonzero()
    assert decide(deref, RelOp.NE, 0) is True
    assert decide(deref, RelOp.EQ, 0) is False
    assert decide(deref, RelOp.GT, 5) is None

    const = ValueSet.singleton(-1)
    assert decide(const, RelOp.EQ, -1) is True
    assert decide(const, RelOp.NE, -1) is False
    assert decide(const, RelOp.LT, 0) is True


def test_decide_exhaustive_against_semantics():
    facts = [ValueSet.singleton(2), ValueSet(0, 3), ValueSet.nonzero(),
             ValueSet.at_least(1), ValueSet.at_most(-1),
             ValueSet.everything_but(2)]
    for fact in facts:
        members = [v for v in range(-12, 13) if fact.contains(v)]
        for relop in RelOp:
            for const in (-2, 0, 2):
                verdict = decide(fact, relop, const)
                outcomes = {relop.evaluate(v, const) for v in members}
                if verdict is True:
                    assert outcomes == {True}
                elif verdict is False:
                    assert outcomes == {False}
                # verdict None gives no guarantee either way.


def test_size_if_small():
    assert ValueSet(0, 3).size_if_small() == 4
    assert ValueSet(0, 3, exclude=1).size_if_small() == 3
    assert ValueSet(0, 99).size_if_small() is None
    assert ValueSet(lo=0).size_if_small() is None


def test_rendering():
    assert str(ValueSet(0, 5, exclude=2)) == "[0, 5] \\ {2}"
    assert str(ValueSet.nonzero()) == "[-inf, +inf] \\ {0}"
