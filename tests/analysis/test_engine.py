"""Scenario tests for the demand-driven correlation analysis.

Each scenario is a small MiniC program with one conditional of interest
(located by its predicate text), and the test checks the answer set the
paper's analysis would produce.
"""

from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.answers import FALSE, TRUE, UNDEF
from repro.ir.nodes import BranchNode

INTER = AnalysisConfig(interprocedural=True, budget=100000)
INTRA = AnalysisConfig(interprocedural=False, budget=100000)


def branch_named(icfg, fragment, occurrence=None):
    """Find a branch by predicate text (scope qualifiers stripped)."""
    import re

    def plain(label):
        return re.sub(r"\w+::", "", label)

    matches = [n for n in icfg.iter_nodes()
               if isinstance(n, BranchNode) and fragment in plain(n.label())]
    if occurrence is not None:
        return matches[occurrence]
    assert len(matches) == 1, f"{fragment!r} matched {len(matches)} branches"
    return matches[0]


def answers(source, fragment, config=INTER, occurrence=None):
    icfg = build(source)
    branch = branch_named(icfg, fragment, occurrence)
    result = analyze_branch(icfg, branch.id, config)
    return result.branch_answers


def kinds(source, fragment, config=INTER):
    return {a.kind for a in answers(source, fragment, config)}


def test_constant_assignment_fully_resolves():
    src = """
        proc main() {
            var x = 3;
            if (x == 3) { print 1; }
        }
    """
    assert answers(src, "x == 3") == {TRUE}


def test_unknown_input_is_undef():
    src = """
        proc main() {
            var x = input();
            if (x == 3) { print 1; }
        }
    """
    assert answers(src, "x == 3") == {UNDEF}


def test_merge_of_constants_gives_both_outcomes():
    src = """
        proc main() {
            var c = input();
            var x = 0;
            if (c > 0) { x = 1; }
            if (x == 1) { print 1; }
        }
    """
    assert answers(src, "x == 1") == {TRUE, FALSE}


def test_branch_assertion_correlates_repeated_test():
    src = """
        proc main() {
            var x = input();
            if (x > 5) { print 1; }
            if (x > 0) { print 2; }
        }
    """
    # Along the first branch's true edge x>5 implies x>0; along the
    # false edge nothing is known (x <= 5 does not decide x > 0).
    assert answers(src, "x > 0") == {TRUE, UNDEF}


def test_branch_assertion_exact_repeat_fully_correlates():
    src = """
        proc main() {
            var x = input();
            if (x == 7) { print 1; }
            if (x == 7) { print 2; }
        }
    """
    assert answers(src, "x == 7", INTRA, occurrence=1) == {TRUE, FALSE}


def test_copy_substitution_chains():
    src = """
        proc main() {
            var a = 4;
            var b = a;
            var c = b;
            if (c != 4) { print 1; }
        }
    """
    assert answers(src, "c != 4") == {FALSE}


def test_self_correlation_around_loop():
    # The paper: "a conditional correlates with itself if there is a
    # path around a loop along which the query variable is not defined".
    src = """
        proc main() {
            var x = input();
            var i = 0;
            while (i < 3) {
                if (x > 0) { print 1; }
                i = i + 1;
            }
        }
    """
    result = answers(src, "x > 0")
    assert TRUE in result and UNDEF in result


def test_return_value_correlation_through_exit():
    src = """
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var r = classify(input());
            if (r == -1) { print 0; }
        }
    """
    assert answers(src, "r == -1") == {TRUE, FALSE}
    assert answers(src, "r == -1", INTRA) == {UNDEF}


def test_parameter_correlation_through_entry():
    src = """
        proc worker(p) {
            if (p == 0) { return -2; }
            return p;
        }
        proc main() {
            var v = input();
            if (v != 0) {
                var r = worker(v);
                print r;
            }
        }
    """
    # Inside worker, p == 0 is false along the guarded call path.
    assert answers(src, "p == 0") == {FALSE}
    assert answers(src, "p == 0", INTRA) == {UNDEF}


def test_constant_argument_resolves_at_call_site():
    src = """
        proc f(p) {
            if (p == 9) { print 1; }
            return 0;
        }
        proc main() { var x = f(9); }
    """
    assert answers(src, "p == 9") == {TRUE}


def test_two_call_sites_contribute_separate_answers():
    src = """
        proc f(p) {
            if (p > 0) { print 1; }
            return 0;
        }
        proc main() {
            var a = f(5);
            var b = f(-5);
        }
    """
    assert answers(src, "p > 0") == {TRUE, FALSE}


def test_global_flag_correlation_through_call():
    src = """
        global err = 0;
        proc may_fail(v) {
            if (v < 0) { err = 1; return 0; }
            err = 0;
            return v;
        }
        proc main() {
            var r = may_fail(input());
            if (err == 1) { print -1; } else { print r; }
        }
    """
    assert answers(src, "err == 1") == {TRUE, FALSE}
    assert answers(src, "err == 1", INTRA) == {UNDEF}


def test_transparent_callee_passes_global_query_through():
    src = """
        global g = 0;
        proc noop(v) { return v + 1; }
        proc main() {
            g = 5;
            var r = noop(1);
            if (g == 5) { print 1; }
        }
    """
    # noop never touches g: the query crosses the call transparently
    # (TRANS) and resolves at the assignment g = 5.
    assert answers(src, "g == 5") == {TRUE}


def test_mod_set_bypass_in_intraprocedural_mode():
    src = """
        global g = 0;
        proc noop(v) { return v + 1; }
        proc main() {
            g = 5;
            var r = noop(1);
            if (g == 5) { print 1; }
        }
    """
    # The baseline's MOD/USE info also proves noop cannot write g.
    assert answers(src, "g == 5", INTRA) == {TRUE}


def test_mod_set_blocks_when_callee_writes_global():
    src = """
        global g = 0;
        proc clobber(v) { g = v; return v; }
        proc main() {
            g = 5;
            var r = clobber(1);
            if (g == 5) { print 1; }
        }
    """
    assert answers(src, "g == 5", INTRA) == {UNDEF}
    # Interprocedurally the analysis sees through the callee: g := v,
    # v is the parameter, and the call site passes the constant 1 —
    # so g == 5 is decidably FALSE.  Strictly better than the baseline.
    assert answers(src, "g == 5") == {FALSE}


def test_caller_local_bypasses_callee():
    src = """
        proc anything() { return input(); }
        proc main() {
            var x = 3;
            var r = anything();
            if (x == 3) { print 1; }
        }
    """
    assert answers(src, "x == 3", INTER) == {TRUE}
    assert answers(src, "x == 3", INTRA) == {TRUE}


def test_uninitialized_local_resolves_to_zero_at_entry():
    src = """
        proc main() {
            var x;
            if (x == 0) { print 1; }
        }
    """
    assert answers(src, "x == 0") == {TRUE}


def test_global_initializer_resolves_at_program_start():
    src = """
        global g = 7;
        proc main() {
            if (g == 7) { print 1; }
        }
    """
    assert answers(src, "g == 7") == {TRUE}
    off = AnalysisConfig(resolve_initialized_globals=False)
    assert answers(src, "g == 7", off) == {UNDEF}


def test_deep_call_chain_correlation():
    src = """
        proc inner(v) {
            if (v == 1) { return 10; }
            return 20;
        }
        proc middle(v) { return inner(v); }
        proc main() {
            var r = middle(1);
            if (r == 10) { print 1; }
        }
    """
    # Both of inner's returns are constants, so the test is fully
    # correlated; the FALSE answer belongs to the (dynamically
    # infeasible, statically present) path through `return 20`.
    assert answers(src, "r == 10") == {TRUE, FALSE}


def test_recursive_procedure_analysis_terminates():
    src = """
        proc walk(n) {
            if (n <= 0) { return 0; }
            return walk(n - 1);
        }
        proc main() {
            var r = walk(input());
            if (r == 0) { print 1; }
        }
    """
    result = answers(src, "r == 0")
    assert TRUE in result  # the base case returns constant 0


def test_unanalyzable_predicate_reported():
    src = """
        proc main() {
            var x = input();
            var y = input();
            if (x == y) { print 1; }
        }
    """
    icfg = build(src)
    branch = branch_named(icfg, "x == y")
    result = analyze_branch(icfg, branch.id, INTER)
    assert not result.analyzable
    assert result.branch_answers == frozenset()
    assert not result.has_correlation


def test_budget_truncation_yields_undef():
    src = """
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var r = classify(input());
            if (r == -1) { print 0; }
        }
    """
    tiny = AnalysisConfig(interprocedural=True, budget=2)
    icfg = build(src)
    branch = branch_named(icfg, "r == -1")
    result = analyze_branch(icfg, branch.id, tiny)
    assert result.stats.budget_exhausted
    assert UNDEF in result.branch_answers
    assert not result.fully_correlated


def test_full_correlation_flag():
    src = """
        proc main() {
            var x = 1;
            if (x == 1) { print 1; }
        }
    """
    icfg = build(src)
    result = analyze_branch(icfg, branch_named(icfg, "x == 1").id, INTER)
    assert result.fully_correlated and result.has_correlation


def test_stats_count_pairs_and_queries():
    src = """
        proc main() {
            var a = 1;
            var b = a;
            if (b == 1) { print 1; }
        }
    """
    icfg = build(src)
    result = analyze_branch(icfg, branch_named(icfg, "b == 1").id, INTER)
    assert result.stats.pairs_examined >= 3
    assert result.stats.queries_raised >= result.stats.pairs_examined
    assert result.visited_node_count() >= 3


def test_recursive_main_resolves_conservatively():
    # When main is itself called, its entry is reached both from call
    # sites and from program start; only the calls appear as edges, so
    # the analysis must not trust them alone.
    src = """
        global depth = 0;
        proc main() {
            if (depth == 0) {
                depth = 1;
                main();
                print depth;
            }
            return 0;
        }
    """
    assert UNDEF in answers(src, "depth == 0")
