from repro.analysis.answers import FALSE, TRUE, UNDEF
from repro.analysis.config import AnalysisConfig, CorrelationSource
from repro.analysis.query import Query
from repro.analysis.resolve import (Decided, Proceed, edge_assertion,
                                    entry_param_contribution, node_transfer)
from repro.ir import lower_program
from repro.ir.expr import (Alloc, BinaryExpr, Const, Convert, InputRead,
                           Load, VarExpr, VarId)
from repro.ir.icfg import Edge, EdgeKind, ICFG
from repro.ir.nodes import (AssignNode, BranchNode, CallNode, NopNode,
                            PrintNode, StoreNode)
from repro.ir.ops import RelOp
from repro.lang import parse_program

X = VarId.local("f", "x")
W = VarId.local("f", "w")
P = VarId.local("f", "p")

ALL = AnalysisConfig()
ICFG_DUMMY = ICFG()


def assign(target, rhs):
    return AssignNode(0, "f", target, rhs)


def q(var, relop=RelOp.EQ, const=0):
    return Query(var, relop, const)


def test_constant_assignment_decides():
    result = node_transfer(ICFG_DUMMY, assign(X, Const(0)), q(X), ALL)
    assert result == Decided(TRUE)
    result = node_transfer(ICFG_DUMMY, assign(X, Const(5)), q(X), ALL)
    assert result == Decided(FALSE)


def test_constant_assignment_source_can_be_disabled():
    config = AnalysisConfig(sources=frozenset(
        {CorrelationSource.BRANCH_ASSERTION}))
    result = node_transfer(ICFG_DUMMY, assign(X, Const(0)), q(X), config)
    assert result == Decided(UNDEF)


def test_copy_assignment_substitutes():
    result = node_transfer(ICFG_DUMMY, assign(X, VarExpr(W)), q(X), ALL)
    assert result == Proceed(q(W))


def test_copy_substitution_can_be_disabled():
    config = AnalysisConfig(copy_substitution=False)
    result = node_transfer(ICFG_DUMMY, assign(X, VarExpr(W)), q(X), config)
    assert result == Decided(UNDEF)


def test_offset_substitution_disabled_by_default():
    rhs = BinaryExpr("+", VarExpr(W), Const(1))
    result = node_transfer(ICFG_DUMMY, assign(X, rhs), q(X), ALL)
    assert result == Decided(UNDEF)


def test_offset_substitution_when_enabled():
    config = AnalysisConfig(offset_substitution=True)
    rhs = BinaryExpr("+", VarExpr(W), Const(1))
    result = node_transfer(ICFG_DUMMY, assign(X, rhs),
                           Query(X, RelOp.LT, 5), config)
    assert result == Proceed(Query(W, RelOp.LT, 4))


def test_offset_substitution_respects_constant_limit():
    config = AnalysisConfig(offset_substitution=True,
                            offset_constant_limit=10)
    rhs = BinaryExpr("-", VarExpr(W), Const(100))
    result = node_transfer(ICFG_DUMMY, assign(X, rhs),
                           Query(X, RelOp.LT, 5), config)
    assert result == Decided(UNDEF)


def test_unsigned_conversion_fact():
    node = assign(X, Convert(VarExpr(W)))
    assert node_transfer(ICFG_DUMMY, node, Query(X, RelOp.GE, 0),
                         ALL) == Decided(TRUE)
    assert node_transfer(ICFG_DUMMY, node, Query(X, RelOp.EQ, -1),
                         ALL) == Decided(FALSE)
    assert node_transfer(ICFG_DUMMY, node, Query(X, RelOp.EQ, 5),
                         ALL) == Decided(UNDEF)


def test_unsigned_conversion_source_can_be_disabled():
    config = AnalysisConfig(sources=frozenset(
        {CorrelationSource.CONSTANT_ASSIGNMENT}))
    node = assign(X, Convert(VarExpr(W)))
    assert node_transfer(ICFG_DUMMY, node, Query(X, RelOp.GE, 0),
                         config) == Decided(UNDEF)


def test_alloc_fact_is_nonnegative():
    node = assign(X, Alloc(Const(4)))
    assert node_transfer(ICFG_DUMMY, node, Query(X, RelOp.GE, 0),
                         ALL) == Decided(TRUE)
    assert node_transfer(ICFG_DUMMY, node, Query(X, RelOp.EQ, 0),
                         ALL) == Decided(UNDEF)


def test_input_and_load_define_unknown():
    assert node_transfer(ICFG_DUMMY, assign(X, InputRead()), q(X),
                         ALL) == Decided(UNDEF)
    assert node_transfer(ICFG_DUMMY, assign(X, Load(VarExpr(P))), q(X),
                         ALL) == Decided(UNDEF)


def test_load_asserts_pointer_nonzero():
    node = assign(X, Load(VarExpr(P)))
    assert node_transfer(ICFG_DUMMY, node, Query(P, RelOp.EQ, 0),
                         ALL) == Decided(FALSE)
    assert node_transfer(ICFG_DUMMY, node, Query(P, RelOp.NE, 0),
                         ALL) == Decided(TRUE)
    # Undecided pointer queries continue (the load does not define p).
    assert node_transfer(ICFG_DUMMY, node, Query(P, RelOp.GT, 5),
                         ALL) == Proceed(Query(P, RelOp.GT, 5))


def test_store_asserts_address_nonzero():
    node = StoreNode(0, "f", VarExpr(P), Const(1))
    assert node_transfer(ICFG_DUMMY, node, Query(P, RelOp.EQ, 0),
                         ALL) == Decided(FALSE)


def test_deref_source_can_be_disabled():
    config = AnalysisConfig(sources=frozenset(
        {CorrelationSource.CONSTANT_ASSIGNMENT}))
    node = assign(X, Load(VarExpr(P)))
    result = node_transfer(ICFG_DUMMY, node, Query(P, RelOp.EQ, 0), config)
    assert result == Proceed(Query(P, RelOp.EQ, 0))


def test_unrelated_nodes_pass_queries_through():
    for node in (PrintNode(0, "f", VarExpr(W)),
                 NopNode(0, "f"),
                 BranchNode(0, "f", VarExpr(W)),
                 CallNode(0, "f", callee="g"),
                 assign(W, Const(1))):
        assert node_transfer(ICFG_DUMMY, node, q(X), ALL) == Proceed(q(X))


def _branch_graph():
    """A real lowered graph with one branch `if (x > 2)`."""
    icfg = lower_program(parse_program("""
        proc main() {
            var x = input();
            if (x > 2) { print 1; } else { print 2; }
        }
    """))
    branch = [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)][0]
    true_edge = [e for e in icfg.succ_edges(branch.id)
                 if e.kind is EdgeKind.TRUE][0]
    false_edge = [e for e in icfg.succ_edges(branch.id)
                  if e.kind is EdgeKind.FALSE][0]
    x = VarId.local("main", "x")
    return icfg, true_edge, false_edge, x


def test_edge_assertion_on_branch_edges():
    icfg, true_edge, false_edge, x = _branch_graph()
    # On the true edge x > 2 holds.
    assert edge_assertion(icfg, true_edge, Query(x, RelOp.GT, 0), ALL) is True
    assert edge_assertion(icfg, true_edge, Query(x, RelOp.LE, 1), ALL) is False
    assert edge_assertion(icfg, true_edge, Query(x, RelOp.EQ, 5), ALL) is None
    # On the false edge x <= 2 holds.
    assert edge_assertion(icfg, false_edge, Query(x, RelOp.LT, 3), ALL) is True
    assert edge_assertion(icfg, false_edge, Query(x, RelOp.GT, 7),
                          ALL) is False


def test_edge_assertion_ignores_other_variables_and_kinds():
    icfg, true_edge, _, x = _branch_graph()
    other = Query(VarId.local("main", "y"), RelOp.GT, 0)
    assert edge_assertion(icfg, true_edge, other, ALL) is None
    normal_edge = Edge(0, 1, EdgeKind.NORMAL)
    assert edge_assertion(icfg, normal_edge, Query(x, RelOp.GT, 0),
                          ALL) is None


def test_edge_assertion_source_can_be_disabled():
    icfg, true_edge, _, x = _branch_graph()
    config = AnalysisConfig(sources=frozenset(
        {CorrelationSource.CONSTANT_ASSIGNMENT}))
    assert edge_assertion(icfg, true_edge, Query(x, RelOp.GT, 0),
                          config) is None


def test_entry_param_contribution_constant_argument():
    call = CallNode(0, "main", callee="f", args=[Const(3)])
    outcome = entry_param_contribution(call, 0, Query(X, RelOp.EQ, 3), ALL)
    assert outcome == TRUE


def test_entry_param_contribution_variable_argument():
    caller_var = VarId.local("main", "y")
    call = CallNode(0, "main", callee="f", args=[VarExpr(caller_var)])
    outcome = entry_param_contribution(call, 0, Query(X, RelOp.EQ, 3), ALL)
    assert outcome == Query(caller_var, RelOp.EQ, 3)


def test_entry_param_contribution_complex_argument_is_undef():
    call = CallNode(0, "main", callee="f",
                    args=[BinaryExpr("*", VarExpr(X), Const(2))])
    outcome = entry_param_contribution(call, 0, q(X), ALL)
    assert outcome == UNDEF
