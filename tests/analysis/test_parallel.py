"""Shard planning and the multi-process analysis prewarm."""

from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.analysis.context import AnalysisContext
from repro.analysis.parallel import (PrewarmReport, call_components,
                                     plan_shards, prewarm_context)
from repro.analysis.store import SummaryStore
from repro.ir.nodes import NopNode

CONFIG = AnalysisConfig(budget=100_000)

CONNECTED = """
    global err = 0;
    proc may_fail(v) {
        if (v < 0) { err = 1; return 0; }
        err = 0;
        return v;
    }
    proc wrapper(v) {
        return may_fail(v);
    }
    proc other(v) {
        if (v > 10) { return 1; }
        return 0;
    }
    proc main() {
        var a = wrapper(input());
        if (err == 1) { print 1; }
        var b = other(input());
        if (b == 1) { print 2; }
        var c = wrapper(input());
        if (err == 0) { print 3; }
        if (c > 0) { print 4; }
    }
"""

# Three call-graph islands: main never calls the helpers.
ISLANDS = """
    proc island_a(v) {
        if (v > 1) { return 1; }
        return 0;
    }
    proc island_b(v) {
        if (v > 2) { return 1; }
        return 0;
    }
    proc main() {
        var v = input();
        if (v > 0) { print 1; }
        return 0;
    }
"""


def bound(icfg):
    context = AnalysisContext()
    context.bind(icfg)
    return context


def all_branches(icfg):
    return sorted(b.id for b in icfg.branch_nodes())


def test_components_are_deterministic_and_weakly_connected():
    icfg = build(CONNECTED)
    components = call_components(icfg)
    # Everything reachable from main is one component, rooted at the
    # lexicographically smallest member.
    assert len(set(components.values())) == 1
    assert components == call_components(build(CONNECTED))

    islands = call_components(build(ISLANDS))
    assert len(set(islands.values())) == 3


def test_plan_covers_every_branch_exactly_once():
    icfg = build(CONNECTED)
    branches = all_branches(icfg)
    for jobs in (1, 2, 3, 4, 16):
        shards = plan_shards(icfg, branches, jobs, bound(icfg))
        planned = [b for s in shards for b in s.branch_ids]
        assert sorted(planned) == branches
        assert len(planned) == len(branches)
        assert len(shards) <= max(1, jobs)
        again = plan_shards(icfg, branches, jobs, bound(icfg))
        assert [(s.procs, s.branch_ids) for s in shards] \
            == [(s.procs, s.branch_ids) for s in again]


def test_one_connected_component_still_fans_out():
    """Any whole program is one weak component; the planner must split
    it per-procedure rather than collapse to a single shard."""
    icfg = build(CONNECTED)
    shards = plan_shards(icfg, all_branches(icfg), 3, bound(icfg))
    assert len(shards) >= 2


def test_small_components_stay_whole():
    icfg = build(ISLANDS)
    shards = plan_shards(icfg, all_branches(icfg), 3, bound(icfg))
    assert len(shards) == 3
    for shard in shards:
        # Each island's lone branch travels with its own procedure.
        assert len(shard.branch_ids) == 1


def prewarm_and_check(icfg, jobs, **kwargs):
    context = bound(icfg)
    report = prewarm_context(icfg, CONFIG, context, jobs, **kwargs)
    # Whatever the prewarm did, cached analysis must agree with fresh.
    for branch in all_branches(icfg):
        if icfg.nodes[branch].proc != "main":
            continue
        warm = analyze_branch(icfg, branch, CONFIG, context=context)
        fresh = analyze_branch(icfg, branch, CONFIG)
        assert warm.branch_answers == fresh.branch_answers
    return context, report


def test_prewarm_merges_worker_summaries():
    icfg = build(CONNECTED)
    context, report = prewarm_and_check(icfg, jobs=2)
    assert report.mode in ("fork", "inline")
    assert report.shards >= 2
    assert report.merged > 0
    assert context.summary_count() >= report.merged


def test_prewarm_inline_fallback(monkeypatch):
    from repro.analysis import parallel
    monkeypatch.setattr(parallel, "_fork_context", lambda: None)
    icfg = build(CONNECTED)
    context, report = prewarm_and_check(icfg, jobs=2)
    assert report.mode == "inline"
    assert report.merged > 0


def test_prewarm_below_two_jobs_is_a_noop():
    icfg = build(CONNECTED)
    context = bound(icfg)
    report = prewarm_context(icfg, CONFIG, context, jobs=1)
    assert report.mode == "off"
    assert report.workers == 0
    assert context.summary_count() == 0


def test_prewarm_stands_aside_when_out_of_sync():
    icfg = build(CONNECTED)
    context = bound(icfg)
    icfg.add_node(NopNode(icfg.new_id(), "main"))  # uncommitted edit
    report = prewarm_context(icfg, CONFIG, context, jobs=2)
    assert report.mode == "off"
    assert context.summary_count() == 0


def test_prewarm_workers_write_through_the_store(tmp_path):
    icfg = build(CONNECTED)
    context = bound(icfg)
    store = SummaryStore(str(tmp_path / "store"), CONFIG)
    context.attach_store(store)
    report = prewarm_context(icfg, CONFIG, context, jobs=2)
    assert report.merged > 0
    # Workers persist as they analyze (fork mode writes from the
    # children; inline mode through the shared store object).
    assert store.entry_count() > 0


def test_prewarm_report_publishes_counters():
    report = PrewarmReport(jobs=2, shards=2, branches=4, workers=2,
                           failures=1, merged=3, mode="fork")
    report.publish()  # obs disabled: must be a silent no-op
