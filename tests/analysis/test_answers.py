from repro.analysis.answers import (FALSE, TRUE, UNDEF, format_answers,
                                    from_bool, sorted_answers, trans)
from repro.analysis.query import Query
from repro.ir.expr import VarId
from repro.ir.ops import RelOp


def test_known_classification():
    assert TRUE.is_known and FALSE.is_known
    assert not UNDEF.is_known
    query = Query(VarId.global_("g"), RelOp.EQ, 0)
    assert not trans(1, query).is_known


def test_from_bool():
    assert from_bool(True) is TRUE
    assert from_bool(False) is FALSE


def test_trans_identity_includes_entry_and_variant():
    q1 = Query(VarId.global_("g"), RelOp.EQ, 0)
    q2 = Query(VarId.global_("h"), RelOp.EQ, 0)
    assert trans(1, q1) == trans(1, q1)
    assert trans(1, q1) != trans(2, q1)
    assert trans(1, q1) != trans(1, q2)


def test_sorted_answers_is_stable_total_order():
    q = Query(VarId.global_("g"), RelOp.EQ, 0)
    answers = [trans(3, q), UNDEF, FALSE, TRUE]
    ordered = sorted_answers(answers)
    assert ordered[:3] == [TRUE, FALSE, UNDEF]
    assert ordered[3].is_trans


def test_format_answers():
    text = format_answers({TRUE, UNDEF})
    assert text == "{TRUE, UNDEF}"
