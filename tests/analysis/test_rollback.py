"""Rollback-phase specifics: answer sets at interior nodes."""

from tests.helpers import build

from repro.analysis import AnalysisConfig
from repro.analysis.answers import FALSE, TRUE, UNDEF
from repro.analysis.driver import analyze_branch
from repro.analysis.rollback import answers_at
from repro.ir.nodes import BranchNode, EntryNode, ExitNode

CONFIG = AnalysisConfig(budget=100000)


def analyze(source, fragment):
    icfg = build(source)
    import re
    branch = [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)
              and fragment in re.sub(r"\w+::", "", n.label())][0]
    return icfg, analyze_branch(icfg, branch.id, CONFIG)


def test_interior_merge_node_unions_answers():
    icfg, result = analyze("""
        proc main() {
            var c = input();
            var x = 0;
            if (c > 0) { x = 1; }
            print c;
            if (x == 1) { print 9; }
        }
    """, "x == 1")
    # The print node sits between the merge and the test: both answers.
    assert result.branch_answers == frozenset({TRUE, FALSE})
    engine = result.engine
    print_nodes = [nid for nid in engine.raised
                   if "print" in icfg.nodes[nid].label()
                   and icfg.nodes[nid].proc == "main"]
    unioned = set()
    for nid in print_nodes:
        for query in engine.raised[nid]:
            unioned |= answers_at(result.answers, nid, query)
    assert {TRUE, FALSE} <= unioned


def test_exit_node_hosts_summary_answers():
    icfg, result = analyze("""
        proc pick(v) {
            if (v > 0) { return 1; }
            return 2;
        }
        proc main() {
            var r = pick(input());
            if (r == 1) { print 1; }
        }
    """, "r == 1")
    engine = result.engine
    exit_id = icfg.procs["pick"].exits[0]
    hosted = list(engine.raised.get(exit_id, ()))
    assert hosted, "exit node should host the summary query"
    summary_answers = answers_at(result.answers, exit_id, hosted[0])
    assert summary_answers == frozenset({TRUE, FALSE})


def test_trans_answer_recorded_at_exit_for_transparent_callee():
    icfg, result = analyze("""
        global g = 0;
        proc noop(v) { return v; }
        proc main() {
            g = 1;
            var r = noop(2);
            if (g == 1) { print 1; }
        }
    """, "g == 1")
    engine = result.engine
    exit_id = icfg.procs["noop"].exits[0]
    hosted = list(engine.raised.get(exit_id, ()))
    assert hosted
    summary_answers = answers_at(result.answers, exit_id, hosted[0])
    assert any(a.is_trans for a in summary_answers)
    entry_id = icfg.procs["noop"].entries[0]
    trans_answers = [a for a in summary_answers if a.is_trans]
    assert trans_answers[0].trans_entry == entry_id
    # And the conditional itself resolves through the transparency.
    assert result.branch_answers == frozenset({TRUE})


def test_unprocessed_pairs_default_to_undef():
    icfg, result = analyze("""
        proc main() {
            var a = input();
            var b = a;
            var c = b;
            if (c == 1) { print 1; }
        }
    """, "c == 1")
    # Re-run with a budget of one pair: only the branch gets processed.
    tiny = analyze_branch(icfg, result.branch_id,
                          AnalysisConfig(budget=1))
    assert tiny.stats.budget_exhausted
    assert UNDEF in tiny.branch_answers


def test_answers_at_unknown_pair_is_undef():
    icfg, result = analyze("""
        proc main() { var x = 1; if (x == 1) { print 1; } }
    """, "x == 1")
    from repro.analysis.query import Query
    from repro.ir.expr import VarId
    from repro.ir.ops import RelOp
    ghost = Query(VarId.global_("ghost"), RelOp.EQ, 0)
    assert answers_at(result.answers, 999, ghost) == frozenset({UNDEF})
