from repro.interp.workload import Workload


def test_sequential_consumption():
    workload = Workload([1, 2])
    assert workload.next_value() == 1
    assert workload.next_value() == 2
    assert workload.consumed == 2


def test_exhausted_stream_yields_default_forever():
    workload = Workload([1], default=-1)
    workload.next_value()
    assert workload.next_value() == -1
    assert workload.next_value() == -1
    assert workload.consumed == 1  # defaults are not "consumed"


def test_reset_rewinds_in_place():
    workload = Workload([5])
    workload.next_value()
    assert workload.reset() is workload
    assert workload.next_value() == 5


def test_fresh_returns_independent_copy():
    workload = Workload([5, 6], name="w")
    workload.next_value()
    copy = workload.fresh()
    assert copy.next_value() == 5
    assert workload.next_value() == 6
    assert copy.name == "w"


def test_random_workload_deterministic_per_seed():
    a = Workload.random(10, seed=3)
    b = Workload.random(10, seed=3)
    c = Workload.random(10, seed=4)
    assert a.values == b.values
    assert a.values != c.values


def test_values_coerced_to_int():
    assert Workload([True, 2.0]).values == [1, 2]


def test_len_and_repr():
    workload = Workload([1, 2, 3], name="demo")
    assert len(workload) == 3
    assert "demo" in repr(workload)
