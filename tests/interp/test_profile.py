from tests.helpers import build

from repro.interp import Workload, run_icfg
from repro.interp.profile import Profile, executed_conditionals
from repro.ir.nodes import BranchNode


def test_merge_accumulates_counters():
    icfg = build("""
        proc main() {
            var i = 0;
            while (i < 2) { i = i + 1; }
        }
    """)
    total = Profile()
    for _ in range(3):
        result = run_icfg(icfg, Workload([]))
        total.merge(result.profile)
    single = run_icfg(icfg, Workload([])).profile
    assert total.executed_conditionals == 3 * single.executed_conditionals
    assert total.executed_operations == 3 * single.executed_operations
    for node_id, count in single.node_counts.items():
        assert total.node_counts[node_id] == 3 * count


def test_branch_executions_sum_true_and_false():
    icfg = build("""
        proc main() {
            var i = 0;
            while (i < 5) { i = i + 1; }
        }
    """)
    profile = run_icfg(icfg, Workload([])).profile
    branch = [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)][0]
    assert profile.branch_executions(branch.id) == 6
    assert profile.branch_true[branch.id] == 5
    assert profile.branch_false[branch.id] == 1


def test_executed_conditionals_crosscheck():
    icfg = build("""
        proc main() {
            var x = input();
            if (x > 0) { print 1; }
            if (x > 1) { print 2; }
        }
    """)
    result = run_icfg(icfg, Workload([5]))
    assert executed_conditionals(result.profile, icfg) == 2
    assert result.profile.executed_conditionals == 2


def test_count_of_unknown_node_is_zero():
    assert Profile().count_of(12345) == 0
