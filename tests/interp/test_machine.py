from tests.helpers import build, run

from repro.interp import Workload, run_icfg


def test_arithmetic_and_print():
    assert run("proc main() { print 2 + 3 * 4; }").output == [14]


def test_exit_value_is_main_return():
    assert run("proc main() { return 41 + 1; }").exit_value == 42


def test_globals_initialized_and_shared_across_calls():
    result = run("""
        global counter = 10;
        proc bump() { counter = counter + 1; return counter; }
        proc main() { bump(); bump(); print counter; }
    """)
    assert result.output == [12]


def test_locals_are_zero_initialized():
    assert run("proc main() { var x; print x; }").output == [0]


def test_parameters_passed_by_value():
    result = run("""
        proc f(x) { x = x + 100; return x; }
        proc main() { var a = 1; var b = f(a); print a; print b; }
    """)
    assert result.output == [1, 101]


def test_recursion_with_separate_frames():
    result = run("""
        proc fact(n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        proc main() { print fact(6); }
    """)
    assert result.output == [720]


def test_mutual_recursion():
    result = run("""
        proc is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        proc is_odd(n)  { if (n == 0) { return 0; } return is_even(n - 1); }
        proc main() { print is_even(10); print is_even(7); }
    """)
    assert result.output == [1, 0]


def test_input_consumes_workload_then_defaults_to_zero():
    result = run("""
        proc main() { print input(); print input(); print input(); }
    """, [5, 6])
    assert result.output == [5, 6, 0]


def test_heap_alloc_load_store():
    result = run("""
        proc main() {
            var p = alloc(3);
            store(p, 7);
            store(p + 2, 9);
            print load(p) + load(p + 1) + load(p + 2);
        }
    """)
    assert result.output == [16]


def test_alloc_nonpositive_size_yields_null():
    result = run("proc main() { print alloc(0); print alloc(-3); }")
    assert result.output == [0, 0]


def test_null_load_faults():
    result = run("proc main() { var x = load(0); print x; }")
    assert result.status == "fault"
    assert "null" in result.fault_message
    assert result.output == []


def test_wild_store_faults():
    result = run("proc main() { store(12345, 1); }")
    assert result.status == "fault"
    assert "wild" in result.fault_message


def test_output_before_fault_preserved():
    result = run("proc main() { print 1; store(0, 2); print 3; }")
    assert result.output == [1]
    assert result.status == "fault"


def test_step_limit_reported():
    icfg = build("proc main() { var i = 0; while (i >= 0) { i = i + 1; } }")
    result = run_icfg(icfg, Workload([]), step_limit=500)
    assert result.status == "step-limit"
    assert result.steps == 500


def test_profile_counts_branches_and_operations():
    result = run("""
        proc main() {
            var i = 0;
            while (i < 3) { i = i + 1; }
        }
    """)
    profile = result.profile
    assert profile.executed_conditionals == 4  # 3 true + 1 false
    assert sum(profile.branch_true.values()) == 3
    assert sum(profile.branch_false.values()) == 1
    assert profile.executed_operations > 4


def test_observable_excludes_profile():
    first = run("proc main() { print input(); }", [3])
    second = run("proc main() { print input(); }", [3])
    assert first.observable == second.observable


def test_workload_fresh_copies_independent():
    icfg = build("proc main() { print input(); }")
    workload = Workload([9, 8])
    assert run_icfg(icfg, workload).output == [9]
    assert run_icfg(icfg, workload).output == [9]  # fresh() rewinds


def test_unsigned_cast_semantics():
    result = run("proc main() { print (unsigned) -1; print (unsigned) 300; }")
    assert result.output == [255, 44]


def test_eager_logical_in_expression_context():
    # In expression (non-branch) position, && evaluates both sides.
    result = run("proc main() { var x = 1 && 2; var y = 0 || 0; "
                 "print x; print y; }")
    assert result.output == [1, 0]
