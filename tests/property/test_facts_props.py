"""Property-based validation of the value-set decision procedure.

The fact algebra is the soundness kernel of the whole analysis: a wrong
``decide`` silently miscompiles programs.  These properties check it
against brute-force set semantics on a finite window (all constructible
sets in the tests are bounded within the window or have their unbounded
behaviour covered by construction).
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.facts import ValueSet, decide
from repro.ir.ops import RelOp

WINDOW = 40

bounds = st.integers(-15, 15)
consts = st.integers(-12, 12)
relops = st.sampled_from(list(RelOp))


@st.composite
def value_sets(draw):
    shape = draw(st.sampled_from(["interval", "copoint", "half_lo",
                                  "half_hi", "interval_excl"]))
    if shape == "interval":
        lo = draw(bounds)
        hi = draw(st.integers(lo, 15))
        return ValueSet(lo, hi)
    if shape == "interval_excl":
        lo = draw(bounds)
        hi = draw(st.integers(lo, 15))
        return ValueSet(lo, hi, exclude=draw(st.integers(lo, hi)))
    if shape == "copoint":
        return ValueSet.everything_but(draw(bounds))
    if shape == "half_lo":
        return ValueSet(lo=draw(bounds), exclude=draw(bounds))
    return ValueSet(hi=draw(bounds), exclude=draw(bounds))


def members(value_set, window=WINDOW):
    return {v for v in range(-window, window + 1) if value_set.contains(v)}


@given(value_sets(), relops, consts)
@settings(max_examples=300)
def test_decide_is_sound(fact, relop, const):
    """If decide() answers, every member of the fact agrees."""
    verdict = decide(fact, relop, const)
    outcomes = {relop.evaluate(v, const) for v in members(fact)}
    if verdict is True:
        assert outcomes <= {True}
    elif verdict is False:
        assert outcomes <= {False}


@given(value_sets(), relops, consts)
@settings(max_examples=300)
def test_decide_is_complete_on_window(fact, relop, const):
    """If all window members agree AND the fact is bounded, decide()
    must answer (completeness of the subset/disjoint tests)."""
    if not fact.is_bounded:
        return
    outcomes = {relop.evaluate(v, const) for v in members(fact)}
    if len(outcomes) == 1 and members(fact):
        assert decide(fact, relop, const) is (outcomes == {True})


@given(value_sets(), value_sets())
@settings(max_examples=300)
def test_subset_agrees_with_member_sets(a, b):
    if a.is_subset_of(b):
        assert members(a) <= members(b)


@given(value_sets(), value_sets())
@settings(max_examples=300)
def test_disjoint_agrees_with_member_sets(a, b):
    if a.is_disjoint_from(b):
        assert not (members(a) & members(b))


@given(value_sets(), value_sets())
@settings(max_examples=300)
def test_subset_complete_for_bounded_sets(a, b):
    """For bounded sets the window is the whole universe, so the
    brute-force answer must match exactly."""
    if a.is_bounded and b.is_bounded:
        assert a.is_subset_of(b) == (members(a) <= members(b))
        assert a.is_disjoint_from(b) == (not (members(a) & members(b)))


@given(value_sets())
@settings(max_examples=200)
def test_subset_reflexive_disjoint_irreflexive(a):
    assert a.is_subset_of(a)
    if members(a):
        assert not a.is_disjoint_from(a)


@given(relops, consts, st.integers(-30, 30))
@settings(max_examples=300)
def test_from_relop_membership_matches_evaluation(relop, const, value):
    assert (ValueSet.from_relop(relop, const).contains(value)
            == relop.evaluate(value, const))
