"""The batch supervisor's contract, property-style.

For random generated programs under random strict fault plans, the
supervisor must (a) never lose a job — every input gets exactly one
definite outcome, (b) journal exactly what it reports, and (c) only
claim OK/DEGRADED when the winning tier's output actually passes
structural verification *and* differential validation — which is
re-checked here by replaying the winning attempt through the worker.

The in-process backend is used: it shares the ladder, breaker, and
journal code with the subprocess backend (whose process-level chaos —
hang/crash/OOM — is exercised in tests/robustness/test_supervisor.py
and benchmarks/bench_supervisor.py).
"""

import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.benchgen import GeneratorOptions, generate_program
from repro.lang.pretty import pretty_print
from repro.robustness.degrade import STATUS_FAILED
from repro.robustness.journal import Journal
from repro.robustness.supervisor import (BatchSupervisor, JobSpec,
                                         SupervisorOptions)
from repro.robustness.worker import run_attempt

OPTIONS = GeneratorOptions(procedures=3, statements_per_proc=6)

SITES = ("analysis:pair", "transform:split", "transform:eliminate",
         "transform:verify", "pipeline:branch-start", "diffcheck:run")

fault_dicts = st.fixed_dictionaries({
    "site": st.sampled_from(SITES),
    "hit": st.integers(1, 3),
    "action": st.sampled_from(("raise", "raise", "skew-print", "drop-edge")),
    "seed": st.integers(0, 99),
})


@given(program_seed=st.integers(0, 4_000),
       batch_seed=st.integers(0, 99),
       fault_plans=st.lists(st.lists(fault_dicts, max_size=2),
                            min_size=1, max_size=2))
@settings(max_examples=6, deadline=None)
def test_supervisor_never_loses_a_job_and_outputs_stay_valid(
        program_seed, batch_seed, fault_plans):
    with tempfile.TemporaryDirectory(prefix="icbe-props-") as scratch:
        specs = []
        for index, faults in enumerate(fault_plans):
            path = os.path.join(scratch, f"gen{index}.mc")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(pretty_print(
                    generate_program(program_seed + index, OPTIONS)))
            specs.append(JobSpec(path, faults=tuple(faults),
                                 strict=bool(faults)))
        run_dir = os.path.join(scratch, "run")
        supervisor = BatchSupervisor(
            specs, run_dir,
            options=SupervisorOptions(isolation="inprocess",
                                      backoff_base_s=0.0, seed=batch_seed))
        report = supervisor.run()

        # (a) No job is ever lost or left indefinite.
        assert len(report.outcomes) == len(specs)
        assert report.all_definite
        for outcome, spec in zip(report.outcomes, specs):
            assert outcome.job == spec.name
            assert outcome.attempts  # at least one attempt is recorded
            # The ladder descends one tier per failed attempt, from 0.
            assert [a.tier for a in outcome.attempts
                    ] == list(range(len(outcome.attempts)))

        # (b) The journal holds exactly the reported outcomes.
        recovered = Journal.recover(run_dir)
        assert sorted(recovered.completed) == list(range(len(specs)))
        for index, outcome in enumerate(report.outcomes):
            assert recovered.completed[index] == outcome

        # (c) Replaying every non-FAILED job's winning attempt through
        # the worker re-runs verify_icfg and the differential check on
        # that tier's output; it must still pass.
        for state in supervisor._states:
            if state.outcome.status == STATUS_FAILED:
                continue
            replay = run_attempt(supervisor._attempt_spec(state))
            assert replay["ok"], replay
            assert replay["verify_ok"] and replay["diff_ok"]
            assert replay["counts"] == state.outcome.counts
