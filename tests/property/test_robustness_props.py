"""Crash-proofness of the transactional optimizer, property-style.

For random generated programs and randomly targeted fault injections,
the non-strict optimizer must (a) never leak an exception, (b) always
return a verifier-clean graph, (c) remain observably equivalent to the
input program, and (d) leave the input graph untouched.  This is the
whole robustness contract in one sentence, so it gets hammered with
hypothesis rather than a handful of hand-picked scenarios.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisConfig
from repro.benchgen import GeneratorOptions, generate_program
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.robustness import (CORRUPTION_ACTIONS, FaultPlan, FaultSpec,
                              differential_check)
from repro.transform import ICBEOptimizer, OptimizerOptions

OPTIONS = GeneratorOptions(procedures=3, statements_per_proc=7)
CONFIG = AnalysisConfig(budget=10_000)

# Every site the pipeline actually hits, so hypothesis can aim anywhere.
SITES = ("analysis:pair", "transform:split", "transform:eliminate",
         "transform:verify", "pipeline:branch-start", "pipeline:simplify",
         "diffcheck:run")

fault_specs = st.builds(
    FaultSpec,
    site=st.sampled_from(SITES),
    hit=st.integers(1, 4),
    action=st.sampled_from(("raise",) + CORRUPTION_ACTIONS),
    seed=st.integers(0, 99))


@given(seed=st.integers(0, 4_000),
       specs=st.lists(fault_specs, min_size=1, max_size=3))
@settings(max_examples=12, deadline=None)
def test_optimizer_survives_arbitrary_fault_plans(seed, specs):
    icfg = lower_program(generate_program(seed, OPTIONS))
    pristine = dump_icfg(icfg)
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=CONFIG, diff_check=True, fault_plan=FaultPlan(list(specs))))
    report = optimizer.optimize(icfg)  # must not raise
    assert dump_icfg(icfg) == pristine  # input never mutated
    verify_icfg(report.optimized)
    assert differential_check(icfg, report.optimized).ok
    # Bookkeeping stays coherent: every conditional got exactly one record.
    assert sum(report.outcome_counts().values()) == len(report.records)


@given(seed=st.integers(0, 4_000))
@settings(max_examples=8, deadline=None)
def test_fault_free_robust_run_equals_plain_run(seed):
    icfg = lower_program(generate_program(seed, OPTIONS))
    robust = ICBEOptimizer(OptimizerOptions(
        config=CONFIG, diff_check=True)).optimize(icfg)
    plain = ICBEOptimizer(OptimizerOptions(config=CONFIG)).optimize(icfg)
    assert robust.failed_count == plain.failed_count == 0
    assert dump_icfg(robust.optimized) == dump_icfg(plain.optimized)
