"""The headline safety property, checked by differential execution:

for any generated program and any workload, the ICBE-optimized program
(interprocedural or baseline) produces exactly the same observable
behaviour, executes no more operations, and executes no more
conditional branches (paper §3.3).
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisConfig
from repro.benchgen import GeneratorOptions, generate_program
from repro.interp import Workload, run_icfg
from repro.ir import lower_program, verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions

OPTIONS = GeneratorOptions(procedures=4, statements_per_proc=7, max_depth=3)


def optimize(icfg, interprocedural):
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=interprocedural, budget=2000),
        duplication_limit=120))
    report = optimizer.optimize(icfg)
    verify_icfg(report.optimized)
    return report.optimized


@given(st.integers(0, 5_000), st.integers(0, 100))
@settings(max_examples=12, deadline=None)
def test_interprocedural_optimization_preserves_semantics(seed, wseed):
    icfg = lower_program(generate_program(seed, OPTIONS))
    optimized = optimize(icfg, interprocedural=True)
    workload = Workload.random(50, seed=wseed)
    before = run_icfg(icfg, workload)
    after = run_icfg(optimized, workload)
    assert after.observable == before.observable
    if before.status == "ok":
        assert (after.profile.executed_operations
                <= before.profile.executed_operations)
        assert (after.profile.executed_conditionals
                <= before.profile.executed_conditionals)


@given(st.integers(5_001, 9_000), st.integers(0, 100))
@settings(max_examples=8, deadline=None)
def test_intraprocedural_baseline_preserves_semantics(seed, wseed):
    icfg = lower_program(generate_program(seed, OPTIONS))
    optimized = optimize(icfg, interprocedural=False)
    workload = Workload.random(50, seed=wseed)
    before = run_icfg(icfg, workload)
    after = run_icfg(optimized, workload)
    assert after.observable == before.observable
    if before.status == "ok":
        assert (after.profile.executed_operations
                <= before.profile.executed_operations)
