"""Serial/parallel and cold/warm-store equivalence, property-style.

``--analysis-jobs N`` only *prewarms* the shared analysis context (the
transform stays single-process), and the summary store only changes
*where* a completed summary is found, never what it says.  Both are
therefore held to the same contract as the in-memory cache: for any
program — fault-free or under a random fault plan — per-branch outcomes
and the optimized graph must be byte-identical to a plain serial run,
and a store full of torn or garbage entries must degrade to misses,
never to different output.

Fault-plan scope matches ``test_cache_equivalence``: ``analysis:pair``
is excluded (cache temperature changes per-pair hit counts by design;
a prewarmed context is simply a warmer cache).
"""

import json
import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisConfig
from repro.benchgen import GeneratorOptions, generate_program
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.robustness import CORRUPTION_ACTIONS, FaultPlan, FaultSpec
from repro.robustness.supervisor import (REPORT_NAME, SupervisorOptions,
                                         run_batch)
from repro.transform import ICBEOptimizer, OptimizerOptions

OPTIONS = GeneratorOptions(procedures=4, statements_per_proc=7)

RAISE_SITES = ("transform:split", "transform:eliminate", "transform:verify",
               "pipeline:branch-start", "pipeline:simplify", "diffcheck:run")
CORRUPT_SITES = ("transform:split", "transform:eliminate",
                 "transform:verify", "pipeline:simplify")

fault_specs = st.one_of(
    st.builds(FaultSpec, site=st.sampled_from(RAISE_SITES),
              hit=st.integers(1, 4), action=st.just("raise")),
    st.builds(FaultSpec, site=st.sampled_from(CORRUPT_SITES),
              hit=st.integers(1, 4),
              action=st.sampled_from(CORRUPTION_ACTIONS),
              seed=st.integers(0, 99)))


def run_mode(icfg, budget, jobs=1, store_dir=None, specs=()):
    plan = FaultPlan(list(specs)) if specs else None
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(budget=budget), diff_check=True,
        fault_plan=plan, analysis_jobs=jobs, summary_store_dir=store_dir))
    return optimizer.optimize(icfg)


def assert_equivalent(baseline, candidate):
    assert ([(r.branch_id, r.outcome) for r in candidate.records]
            == [(r.branch_id, r.outcome) for r in baseline.records])
    assert dump_icfg(candidate.optimized) == dump_icfg(baseline.optimized)
    verify_icfg(candidate.optimized)


@given(seed=st.integers(0, 4_000), budget=st.sampled_from((80, 10_000)))
@settings(max_examples=8, deadline=None)
def test_analysis_jobs_are_invisible(seed, budget):
    icfg = lower_program(generate_program(seed, OPTIONS))
    pristine = dump_icfg(icfg)
    serial = run_mode(icfg, budget, jobs=1)
    for jobs in (2, 4):
        assert_equivalent(serial, run_mode(icfg, budget, jobs=jobs))
    assert dump_icfg(icfg) == pristine


@given(seed=st.integers(0, 4_000),
       specs=st.lists(fault_specs, min_size=1, max_size=3),
       budget=st.sampled_from((80, 10_000)))
@settings(max_examples=8, deadline=None)
def test_analysis_jobs_are_invisible_under_fault_plans(seed, specs, budget):
    icfg = lower_program(generate_program(seed, OPTIONS))
    serial = run_mode(icfg, budget, specs=specs)
    assert_equivalent(serial, run_mode(icfg, budget, jobs=4, specs=specs))


@given(seed=st.integers(0, 4_000), budget=st.sampled_from((80, 10_000)))
@settings(max_examples=6, deadline=None)
def test_summary_store_is_invisible_cold_and_warm(seed, budget):
    icfg = lower_program(generate_program(seed, OPTIONS))
    serial = run_mode(icfg, budget)
    with tempfile.TemporaryDirectory(prefix="icbe-store-") as root:
        cold = run_mode(icfg, budget, store_dir=root)       # populates
        warm = run_mode(icfg, budget, store_dir=root)       # consumes
        both = run_mode(icfg, budget, jobs=2, store_dir=root)
        for candidate in (cold, warm, both):
            assert_equivalent(serial, candidate)
        if warm.store is not None and cold.store.stores > 0:
            assert warm.store.hits > 0


@given(seed=st.integers(0, 2_000), corruption=st.integers(0, 3))
@settings(max_examples=6, deadline=None)
def test_corrupted_store_degrades_to_misses(seed, corruption):
    icfg = lower_program(generate_program(seed, OPTIONS))
    serial = run_mode(icfg, 10_000)
    garbage = ['{"format": 1, "answers": [',
               "not json",
               json.dumps({"format": 999, "answers": []}),
               json.dumps({"format": 1, "answers": [{"kind": "trans",
                                                     "entry": ["gone", 7]}]})]
    with tempfile.TemporaryDirectory(prefix="icbe-store-") as root:
        run_mode(icfg, 10_000, store_dir=root)
        for name in os.listdir(root):
            path = os.path.join(root, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(garbage[corruption])
        poisoned = run_mode(icfg, 10_000, store_dir=root)
        assert_equivalent(serial, poisoned)
        if poisoned.store is not None:
            assert poisoned.store.hits == 0


PROGRAM = """
proc classify(v) {
    if (v <= 0) { return 0; }
    return v;
}
proc main() {
    var r = classify(input());
    if (r == 0) { print 0; } else { print r; }
    return 0;
}
"""


def test_batch_journal_bytes_survive_analysis_jobs(tmp_path):
    """The whole-batch artifact check: journal and report bytes are
    identical whether attempts prewarm in parallel or not."""
    program = tmp_path / "prog.mc"
    program.write_text(PROGRAM)
    sources = [str(program), "suite:compress_like@1"]

    def batch(run_dir, analysis_jobs, store=None):
        run_batch(sources, str(run_dir), options=SupervisorOptions(
            isolation="inprocess", timeout_s=60.0, backoff_base_s=0.0,
            seed=6, analysis_jobs=analysis_jobs, summary_store=store))

    def artifact(run_dir, name):
        with open(os.path.join(str(run_dir), name), "rb") as handle:
            return handle.read()

    batch(tmp_path / "serial", 1)
    batch(tmp_path / "wide", 4)
    batch(tmp_path / "stored", 4, store=str(tmp_path / "store"))
    batch(tmp_path / "warmed", 4, store=str(tmp_path / "store"))
    for run_dir in ("wide", "stored", "warmed"):
        assert (artifact(tmp_path / run_dir, "journal.jsonl")
                == artifact(tmp_path / "serial", "journal.jsonl"))
        assert (artifact(tmp_path / run_dir, REPORT_NAME)
                == artifact(tmp_path / "serial", REPORT_NAME))
