"""Property: the front end round-trips and lowers any generated program."""

from hypothesis import given, settings, strategies as st

from repro.benchgen import GeneratorOptions, generate_program
from repro.ir import lower_program, verify_icfg
from repro.lang import parse_program, pretty_print

seeds = st.integers(0, 10_000)


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_pretty_parse_fixed_point(seed):
    program = generate_program(seed)
    text = pretty_print(program)
    assert pretty_print(parse_program(text)) == text


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_generated_programs_lower_to_wellformed_icfg(seed):
    options = GeneratorOptions(procedures=3, statements_per_proc=6)
    icfg = lower_program(generate_program(seed, options))
    verify_icfg(icfg)


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_clone_preserves_dump(seed):
    options = GeneratorOptions(procedures=3, statements_per_proc=5)
    icfg = lower_program(generate_program(seed, options))
    from repro.ir import dump_icfg
    assert dump_icfg(icfg.clone()) == dump_icfg(icfg)
