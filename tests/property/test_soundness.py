"""Analysis soundness, checked dynamically.

The rollback answers at a conditional enumerate what can happen on
incoming paths: TRUE means "some paths provably take the branch",
UNDEF means "some paths are unknown".  Soundness is the converse
direction: a dynamic outcome that the answer set does not allow is a
bug.  Concretely, if UNDEF is absent then every observed outcome must
be covered by a TRUE/FALSE answer.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisConfig, analyze_branch
from repro.benchgen import GeneratorOptions, generate_program
from repro.interp import Workload, run_icfg
from repro.ir import lower_program

OPTIONS = GeneratorOptions(procedures=3, statements_per_proc=7)
CONFIG = AnalysisConfig(budget=20_000)


@given(st.integers(0, 4_000), st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_branch_answers_cover_dynamic_outcomes(seed, wseed):
    icfg = lower_program(generate_program(seed, OPTIONS))
    result = run_icfg(icfg, Workload.random(40, seed=wseed))
    if result.status != "ok":
        return
    profile = result.profile
    for branch in icfg.branch_nodes():
        taken = profile.branch_true.get(branch.id, 0)
        not_taken = profile.branch_false.get(branch.id, 0)
        if taken == 0 and not_taken == 0:
            continue
        analysis = analyze_branch(icfg, branch.id, CONFIG)
        if not analysis.analyzable:
            continue
        kinds = {a.kind for a in analysis.branch_answers}
        if "undef" in kinds:
            continue  # anything is allowed
        if taken > 0:
            assert "true" in kinds, (
                f"branch {branch.id} ({branch.label()}) was taken but "
                f"answers are {kinds}")
        if not_taken > 0:
            assert "false" in kinds, (
                f"branch {branch.id} ({branch.label()}) fell through but "
                f"answers are {kinds}")


@given(st.integers(0, 4_000))
@settings(max_examples=10, deadline=None)
def test_analysis_is_deterministic(seed):
    icfg = lower_program(generate_program(seed, OPTIONS))
    branches = icfg.branch_nodes()
    if not branches:
        return
    branch = branches[len(branches) // 2]
    first = analyze_branch(icfg, branch.id, CONFIG)
    second = analyze_branch(icfg, branch.id, CONFIG)
    assert first.branch_answers == second.branch_answers
    assert first.stats.pairs_examined == second.stats.pairs_examined
