"""Property tests for the transformation extensions: the inliner and
the nop simplifier preserve semantics on arbitrary generated programs."""

from hypothesis import given, settings, strategies as st

from repro.benchgen import GeneratorOptions, generate_program
from repro.interp import Workload, run_icfg
from repro.ir import lower_program, verify_icfg
from repro.ir.simplify import simplify_nops
from repro.transform.inline import inline_exhaustively

OPTIONS = GeneratorOptions(procedures=3, statements_per_proc=6)


@given(st.integers(0, 4_000), st.integers(0, 60))
@settings(max_examples=10, deadline=None)
def test_exhaustive_inlining_preserves_semantics(seed, wseed):
    icfg = lower_program(generate_program(seed, OPTIONS))
    flattened = icfg.clone()
    inline_exhaustively(flattened, node_budget=6_000)
    verify_icfg(flattened)
    workload = Workload.random(40, seed=wseed)
    before = run_icfg(icfg, workload)
    after = run_icfg(flattened, workload)
    assert after.observable == before.observable


@given(st.integers(0, 4_000), st.integers(0, 60))
@settings(max_examples=15, deadline=None)
def test_simplify_preserves_semantics_and_counts(seed, wseed):
    icfg = lower_program(generate_program(seed, OPTIONS))
    simplified = icfg.clone()
    removed = simplify_nops(simplified)
    verify_icfg(simplified)
    assert simplified.executable_node_count() == icfg.executable_node_count()
    assert simplified.node_count() == icfg.node_count() - removed
    workload = Workload.random(40, seed=wseed)
    before = run_icfg(icfg, workload)
    after = run_icfg(simplified, workload)
    assert after.observable == before.observable
    if before.status == "ok":
        # Dummy removal never changes operation counts.
        assert (after.profile.executed_operations
                == before.profile.executed_operations)
