"""Cache-on/cache-off equivalence of the optimizer, property-style.

The shared analysis context (summary cache, snapshot reuse, restore
elision, in-place restructuring, scoped re-verification) is a pure
optimization: for any program, per-branch outcomes and the final graph
must be byte-identical to a `--no-analysis-cache` run.  Hypothesis
hammers that over random generated programs — fault-free and under
random fault plans.

Fault-plan scope: raising faults may target any site except
``analysis:pair`` (the cache changes how many node-query pairs an
analysis examines, so per-pair hit counts differ *by design*; outcomes
still agree, as the fault-free property shows).  Corruption faults may
target the transform and simplify sites: injected corruption marks the
whole graph dirty, so the cached mode's scoped verification degenerates
to the full check and both modes see the corruption identically.
Corruption at ``pipeline:branch-start`` / ``analysis:pair`` is excluded
for the symmetric reason — the cached mode detects the generation bump
and heals the live graph immediately, while the baseline clones the
corrupted graph and analyzes it, which is a deliberate robustness
improvement, not an equivalence bug.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import AnalysisConfig
from repro.benchgen import GeneratorOptions, generate_program
from repro.ir import dump_icfg, lower_program, verify_icfg
from repro.robustness import CORRUPTION_ACTIONS, FaultPlan, FaultSpec
from repro.transform import ICBEOptimizer, OptimizerOptions

OPTIONS = GeneratorOptions(procedures=3, statements_per_proc=7)

RAISE_SITES = ("transform:split", "transform:eliminate", "transform:verify",
               "pipeline:branch-start", "pipeline:simplify", "diffcheck:run")
CORRUPT_SITES = ("transform:split", "transform:eliminate",
                 "transform:verify", "pipeline:simplify")

fault_specs = st.one_of(
    st.builds(FaultSpec, site=st.sampled_from(RAISE_SITES),
              hit=st.integers(1, 4), action=st.just("raise")),
    st.builds(FaultSpec, site=st.sampled_from(CORRUPT_SITES),
              hit=st.integers(1, 4),
              action=st.sampled_from(CORRUPTION_ACTIONS),
              seed=st.integers(0, 99)))


def both_modes(icfg, budget, specs=()):
    """One report per mode; each gets its own FaultPlan instance
    because a plan's firing state is mutable."""
    reports = []
    for cache in (True, False):
        plan = FaultPlan(list(specs)) if specs else None
        optimizer = ICBEOptimizer(OptimizerOptions(
            config=AnalysisConfig(budget=budget), diff_check=True,
            fault_plan=plan, analysis_cache=cache))
        reports.append(optimizer.optimize(icfg))
    return reports


def assert_equivalent(icfg, cached, plain):
    assert ([(r.branch_id, r.outcome) for r in cached.records]
            == [(r.branch_id, r.outcome) for r in plain.records])
    assert dump_icfg(cached.optimized) == dump_icfg(plain.optimized)
    verify_icfg(cached.optimized)


@given(seed=st.integers(0, 4_000), budget=st.sampled_from((80, 10_000)))
@settings(max_examples=10, deadline=None)
def test_cache_is_invisible_on_fault_free_runs(seed, budget):
    icfg = lower_program(generate_program(seed, OPTIONS))
    pristine = dump_icfg(icfg)
    cached, plain = both_modes(icfg, budget)
    assert dump_icfg(icfg) == pristine
    assert_equivalent(icfg, cached, plain)


@given(seed=st.integers(0, 4_000),
       specs=st.lists(fault_specs, min_size=1, max_size=3),
       budget=st.sampled_from((80, 10_000)))
@settings(max_examples=10, deadline=None)
def test_cache_is_invisible_under_fault_plans(seed, specs, budget):
    icfg = lower_program(generate_program(seed, OPTIONS))
    pristine = dump_icfg(icfg)
    cached, plain = both_modes(icfg, budget, specs=specs)
    assert dump_icfg(icfg) == pristine
    assert_equivalent(icfg, cached, plain)
