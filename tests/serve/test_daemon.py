"""``icbe serve`` as a real process: HTTP, signals, crash recovery.

Everything here goes through the CLI entry point and the wire — the
same path operators use.  Ports are always ephemeral (``--port 0``)
and discovered via ``<run_dir>/serve.json``.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.app import read_discovery

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

PROGRAM = """
proc main() {
    var v = input();
    if (v > 0) { if (v > 0) { print 1; } }
    return 0;
}
"""


def _spawn(run_dir, *extra):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--run-dir", str(run_dir),
         "--drain-grace", "5", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def _wait_ready(run_dir, proc, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited early: {proc.stderr.read().decode()}")
        info = read_discovery(str(run_dir))
        # A stale serve.json from a previous (killed) daemon may point
        # at a dead port until the restart rebinds and republishes.
        if info is not None:
            try:
                status, body, _ = _request(info, "GET", "/readyz",
                                           timeout=2.0)
            except OSError:
                status = None
            if status == 200:
                return info
        time.sleep(0.05)
    raise AssertionError("daemon never became ready")


def _request(info, method, path, body=None, timeout=30.0):
    conn = http.client.HTTPConnection(info["host"], info["port"],
                                      timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw else {}
        return response.status, parsed, dict(response.getheaders())
    finally:
        conn.close()


def _poll_done(info, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, body, _ = _request(info, "GET",
                                   f"/v1/jobs/{job_id}?wait=5")
        assert status == 200, body
        if body["state"] == "done":
            return body
    raise AssertionError(f"job {job_id} never finished")


def _shutdown(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)


def test_daemon_serves_jobs_and_drains_on_sigterm(tmp_path):
    run_dir = tmp_path / "run"
    proc = _spawn(run_dir)
    try:
        info = _wait_ready(run_dir, proc)
        assert info["pid"] == proc.pid

        status, body, _ = _request(info, "GET", "/healthz")
        assert status == 200 and body["ok"]

        status, body, _ = _request(info, "POST", "/v1/jobs",
                                   {"source": PROGRAM})
        assert status == 202, body
        job_id = body["id"]
        done = _poll_done(info, job_id)
        assert done["result"]["status"] == "OK"

        # Identical resubmission: served from cache, no second job.
        status, body, _ = _request(info, "POST", "/v1/jobs",
                                   {"source": PROGRAM})
        assert status == 200 and body["cached"] is True

        status, stats, _ = _request(info, "GET", "/v1/stats")
        assert status == 200
        assert stats["jobs"]["completed"] == 1
        assert stats["cache"]["entries"] >= 1

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 143
        stderr = proc.stderr.read().decode()
        assert "caught SIGTERM" in stderr
        assert "drained" in stderr
    finally:
        _shutdown(proc)


def test_streaming_reports_every_transition(tmp_path):
    run_dir = tmp_path / "run"
    proc = _spawn(run_dir)
    try:
        info = _wait_ready(run_dir, proc)
        status, body, _ = _request(info, "POST", "/v1/jobs",
                                   {"source": PROGRAM})
        assert status == 202
        conn = http.client.HTTPConnection(info["host"], info["port"],
                                          timeout=60.0)
        try:
            conn.request("GET", f"/v1/jobs/{body['id']}/stream")
            response = conn.getresponse()
            assert response.status == 200
            states = [json.loads(line)["state"]
                      for line in response.read().splitlines() if line]
        finally:
            conn.close()
        assert states[-1] == "done"
        assert set(states) <= {"queued", "running", "done"}
    finally:
        _shutdown(proc)


def test_post_drain_endpoint_drains_with_exit_zero(tmp_path):
    run_dir = tmp_path / "run"
    proc = _spawn(run_dir)
    try:
        info = _wait_ready(run_dir, proc)
        status, _, _ = _request(info, "POST", "/v1/drain")
        assert status == 202
        assert proc.wait(timeout=30) == 0
    finally:
        _shutdown(proc)


def test_sigkill_recovery_preserves_jobs_and_cache(tmp_path):
    run_dir = tmp_path / "run"
    # Serialize everything behind one slow chaos job so the kill lands
    # while real work is checkpointed-but-unfinished.
    proc = _spawn(run_dir)
    try:
        info = _wait_ready(run_dir, proc)
        status, first, _ = _request(
            info, "POST", "/v1/jobs",
            {"source": PROGRAM, "inject": {"kind": "hang", "tiers": [0]}})
        assert status == 202
        status, second, _ = _request(info, "POST", "/v1/jobs",
                                     {"suite": "li_like@1"})
        assert status == 202
        proc.kill()  # SIGKILL: no drain, no checkpointing courtesy
        proc.wait(timeout=10)
    finally:
        _shutdown(proc)

    proc = _spawn(run_dir, "--timeout", "5")
    try:
        info = _wait_ready(run_dir, proc)
        # Both admitted jobs survived the murder, under their old ids.
        recovered = _poll_done(info, second["id"], timeout_s=90.0)
        assert recovered["result"]["status"] == "OK"
        hung = _poll_done(info, first["id"], timeout_s=90.0)
        # The hang drill resumed too: tier 0 hangs, tier 1 completes.
        assert hung["result"]["status"] == "DEGRADED"
        # And the recovered suite result is now cache-served.
        status, body, _ = _request(info, "POST", "/v1/jobs",
                                   {"suite": "li_like@1"})
        assert status == 200 and body["cached"] is True
    finally:
        _shutdown(proc)


@pytest.mark.parametrize("signum,code", [(signal.SIGINT, 130)])
def test_sigint_exits_130(tmp_path, signum, code):
    proc = _spawn(tmp_path / "run")
    try:
        _wait_ready(tmp_path / "run", proc)
        proc.send_signal(signum)
        assert proc.wait(timeout=30) == code
    finally:
        _shutdown(proc)
