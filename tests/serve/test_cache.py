"""Content addressing and the two-level result cache."""

import json
import os

import pytest

from repro.errors import ParseError, ServeError
from repro.serve.cache import (CACHE_FORMAT, ResultCache, Submission,
                               canonical_key, normalize_fingerprint,
                               resolve_submission)

FINGERPRINT = {"budget": 1000, "duplication_limit": 100,
               "diff_check": True, "conditional_deadline_s": None}

PROGRAM = """
proc main() {
    var v = input();
    if (v > 0) { if (v > 0) { print 1; } }
    return 0;
}
"""

# Same graph, different surface text: reordered whitespace + comments.
PROGRAM_RESTYLED = (
    "// a comment the lexer drops\n"
    "proc main()   {\n var v = input();\n"
    "    if (v > 0) { if (v > 0) { print 1; } }\n    return 0;\n}\n")


def test_canonical_key_is_stable_and_fingerprint_sensitive():
    key = canonical_key("dump-text", FINGERPRINT)
    assert key == canonical_key("dump-text", dict(FINGERPRINT))
    assert key != canonical_key("dump-text!", FINGERPRINT)
    assert key != canonical_key("dump-text", {**FINGERPRINT, "budget": 2})


def test_resolution_is_formatting_insensitive(tmp_path):
    a = resolve_submission({"source": PROGRAM}, str(tmp_path), FINGERPRINT)
    b = resolve_submission({"source": PROGRAM_RESTYLED}, str(tmp_path),
                           FINGERPRINT)
    assert isinstance(a, Submission)
    assert a.key == b.key
    # The spooled program is content-addressed and loadable.
    assert os.path.exists(a.job_source)
    assert a.job_source.endswith(f"{a.key}.mc")
    assert a.name.startswith("adhoc:")


def test_suite_resolution_and_class(tmp_path):
    sub = resolve_submission({"suite": "li_like@1"}, str(tmp_path),
                             FINGERPRINT)
    assert sub.job_source == "suite:li_like@1"
    assert sub.name == "li_like"
    assert sub.job_class == "li_like"
    # The explicit prefix form resolves to the same thing.
    again = resolve_submission({"suite": "suite:li_like@1"}, str(tmp_path),
                               FINGERPRINT)
    assert again.key == sub.key


def test_malformed_submissions_are_refused(tmp_path):
    run = str(tmp_path)
    with pytest.raises(ServeError, match="exactly one"):
        resolve_submission({}, run, FINGERPRINT)
    with pytest.raises(ServeError, match="exactly one"):
        resolve_submission({"source": "x", "suite": "y"}, run, FINGERPRINT)
    with pytest.raises(ServeError, match="non-empty"):
        resolve_submission({"source": "   "}, run, FINGERPRINT)
    with pytest.raises(ServeError, match="unknown suite"):
        resolve_submission({"suite": "nope@1"}, run, FINGERPRINT)
    with pytest.raises(ParseError):
        resolve_submission({"source": "proc main() { print 1 }"},
                           run, FINGERPRINT)


def test_cache_round_trip_and_disk_persistence(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.get("k1") is None
    cache.put("k1", {"status": "OK", "tier": 0})
    assert cache.get("k1")["status"] == "OK"
    # A second instance on the same directory sees the entry (disk).
    fresh = ResultCache(str(tmp_path))
    assert fresh.get("k1")["tier"] == 0
    assert fresh.stats()["hits"] == 1


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("k1", {"status": "OK"})
    path = os.path.join(str(tmp_path), "cache", "k1.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"status": "OK"')  # torn write
    fresh = ResultCache(str(tmp_path))
    assert fresh.get("k1") is None
    # And an in-memory put repairs it (in the versioned envelope).
    fresh.put("k1", {"status": "OK"})
    envelope = json.load(open(path))
    assert envelope["format"] == CACHE_FORMAT
    assert envelope["result"]["status"] == "OK"


def test_unversioned_disk_entry_is_a_rejected_miss(tmp_path):
    """An entry written by a pre-envelope build (a bare result dict)
    must not be served verbatim after an upgrade."""
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    with open(cache_dir / "k1.json", "w", encoding="utf-8") as handle:
        json.dump({"status": "OK", "tier": 0}, handle)
    cache = ResultCache(str(tmp_path), fingerprint=FINGERPRINT)
    assert cache.get("k1") is None
    assert cache.stats()["rejects"] == 1
    assert cache.stats()["misses"] == 1


def test_wrong_format_stamp_is_a_rejected_miss(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint=FINGERPRINT)
    cache.put("k1", {"status": "OK"})
    path = os.path.join(str(tmp_path), "cache", "k1.json")
    envelope = json.load(open(path))
    envelope["format"] = CACHE_FORMAT + 1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
    fresh = ResultCache(str(tmp_path), fingerprint=FINGERPRINT)
    assert fresh.get("k1") is None
    assert fresh.stats()["rejects"] == 1


def test_fingerprint_echo_mismatch_is_a_rejected_miss(tmp_path):
    """Defence in depth: even if two daemons somehow computed the same
    key under different options, the echoed fingerprint catches it."""
    writer = ResultCache(str(tmp_path), fingerprint=FINGERPRINT)
    writer.put("k1", {"status": "OK"})
    reader = ResultCache(str(tmp_path),
                         fingerprint={**FINGERPRINT, "budget": 2})
    assert reader.get("k1") is None
    assert reader.stats()["rejects"] == 1
    # The matching daemon still reads it.
    match = ResultCache(str(tmp_path), fingerprint=dict(FINGERPRINT))
    assert match.get("k1")["status"] == "OK"


def test_normalize_fingerprint_canonicalizes():
    assert normalize_fingerprint({"b": 1, "a": (1, 2)}) \
        == {"a": [1, 2], "b": 1}
    # Integral floats collapse onto the int they equal: 60 and 60.0
    # name the same option value and must share a key.
    assert (canonical_key("d", {"timeout": 60})
            == canonical_key("d", {"timeout": 60.0}))
    assert normalize_fingerprint(0.5) == 0.5
    assert normalize_fingerprint({"keep": None}) == {"keep": None}


def test_normalize_fingerprint_rejects_unhashable_values():
    for bad in ({"x": float("nan")}, {"x": float("inf")},
                {1: "non-string key"}, {"x": object()}, {"x": {2, 3}}):
        with pytest.raises(ValueError):
            normalize_fingerprint(bad)


# -- durability: write failures are counted, orphans are swept -------------


def test_put_write_failure_is_counted_not_fatal(tmp_path):
    from repro.utils.durafs import Filesystem, FsFaultPlan
    fs = Filesystem(FsFaultPlan.erroring("serve.cache", op="write"))
    cache = ResultCache(str(tmp_path), fingerprint=dict(FINGERPRINT),
                        fs=fs)
    cache.put("deadbeef", {"status": "OK"})
    assert cache.io_errors == 1
    assert cache.stats()["io_errors"] == 1
    # The running daemon still serves the result from memory...
    assert cache.get("deadbeef") == {"status": "OK"}
    # ...but a restarted one starts cold for this entry: no disk write.
    fresh = ResultCache(str(tmp_path), fingerprint=dict(FINGERPRINT))
    assert fresh.get("deadbeef") is None


def test_spool_failure_is_a_structured_serve_error(tmp_path):
    import errno
    from repro.serve.cache import _spool_program
    from repro.utils.durafs import Filesystem, FsFaultPlan
    fs = Filesystem(FsFaultPlan.erroring("serve.spool", op="write"))
    with pytest.raises(ServeError) as caught:
        _spool_program(str(tmp_path), "cafe" * 8, "proc main() {}", fs=fs)
    assert caught.value.context["errno"] == errno.ENOSPC
    assert caught.value.context["path"].endswith(".mc")
    # Jobs are only journaled once spooled: nothing half-admitted.
    assert not os.path.exists(os.path.join(str(tmp_path), "programs",
                                           "cafe" * 8 + ".mc"))


def test_cache_open_sweeps_orphans_from_both_write_surfaces(tmp_path):
    for sub, name in (("cache", "a.json.tmp.999"),
                      ("programs", "b.mc.tmp.999")):
        os.makedirs(str(tmp_path / sub), exist_ok=True)
        orphan = tmp_path / sub / name
        orphan.write_text("debris")
        os.utime(str(orphan), (1, 1))           # long past the TTL
    cache = ResultCache(str(tmp_path), fingerprint=dict(FINGERPRINT))
    assert cache.orphans_swept == 2
    assert cache.stats()["orphans_swept"] == 2
    assert not os.path.exists(str(tmp_path / "cache" / "a.json.tmp.999"))
    assert not os.path.exists(str(tmp_path / "programs" / "b.mc.tmp.999"))
