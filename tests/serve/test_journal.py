"""The serve journal: durability, recovery, torn tails, config safety."""

import json
import os

import pytest

from repro.errors import ServeError
from repro.serve.journal import JOURNAL_NAME, ServeJournal

META = {"seed": 0, "fingerprint": {"budget": 1000}}


def _submit(jid, key="k"):
    return {"id": jid, "job": f"{jid}.mc", "name": jid, "job_class": "t",
            "key": key, "priority": 5, "deadline_s": 300.0, "inject": None}


def _path(run_dir):
    return os.path.join(str(run_dir), JOURNAL_NAME)


def test_fresh_write_then_recover_pairs_submits_with_dones(tmp_path):
    journal = ServeJournal(str(tmp_path))
    journal.open_fresh(META)
    journal.append_submit(_submit("j-1"))
    journal.append_submit(_submit("j-2"))
    journal.append_done("j-1", {"status": "OK", "tier": 0})
    journal.close()

    recovered = ServeJournal.recover(str(tmp_path))
    assert recovered.meta["seed"] == 0
    assert [r["id"] for r in recovered.submits] == ["j-1", "j-2"]
    assert recovered.done["j-1"]["status"] == "OK"
    assert [r["id"] for r in recovered.pending] == ["j-2"]
    assert not recovered.torn_tail


def test_recover_returns_none_for_a_fresh_directory(tmp_path):
    assert ServeJournal.recover(str(tmp_path)) is None


def test_torn_tail_is_tolerated_and_truncated_on_reopen(tmp_path):
    journal = ServeJournal(str(tmp_path))
    journal.open_fresh(META)
    journal.append_submit(_submit("j-1"))
    journal.close()
    with open(_path(tmp_path), "ab") as handle:
        handle.write(b'{"type": "done", "id": "j-1", "resu')  # SIGKILL here

    recovered = ServeJournal.recover(str(tmp_path))
    assert recovered.torn_tail
    assert [r["id"] for r in recovered.pending] == ["j-1"]

    # Re-opening truncates the torn bytes and appends cleanly after them.
    journal2 = ServeJournal(str(tmp_path))
    journal2.open_recovered(recovered, META)
    journal2.append_done("j-1", {"status": "OK", "tier": 0})
    journal2.close()
    lines = [json.loads(line) for line in open(_path(tmp_path))]
    assert [r["type"] for r in lines] == ["meta", "submit", "done"]


def test_corruption_before_the_tail_raises(tmp_path):
    journal = ServeJournal(str(tmp_path))
    journal.open_fresh(META)
    journal.append_submit(_submit("j-1"))
    journal.close()
    raw = open(_path(tmp_path), "rb").read()
    lines = raw.splitlines(keepends=True)
    lines[0] = b'{"type": "meta", "broken\n'
    with open(_path(tmp_path), "wb") as handle:
        handle.writelines(lines)
    with pytest.raises(ServeError, match="corrupt"):
        ServeJournal.recover(str(tmp_path))


def test_reopen_refuses_a_different_fingerprint_or_seed(tmp_path):
    journal = ServeJournal(str(tmp_path))
    journal.open_fresh(META)
    journal.append_submit(_submit("j-1"))
    journal.close()
    recovered = ServeJournal.recover(str(tmp_path))
    with pytest.raises(ServeError, match="fingerprint"):
        ServeJournal(str(tmp_path)).open_recovered(
            recovered, {"seed": 0, "fingerprint": {"budget": 7}})
    with pytest.raises(ServeError, match="seed"):
        ServeJournal(str(tmp_path)).open_recovered(
            recovered, {"seed": 5, "fingerprint": {"budget": 1000}})


def test_unknown_record_type_raises(tmp_path):
    journal = ServeJournal(str(tmp_path))
    journal.open_fresh(META)
    journal.close()
    with open(_path(tmp_path), "ab") as handle:
        handle.write(b'{"type": "mystery"}\n')
        handle.write(b'{"type": "submit", "id": "j-9"}\n')
    with pytest.raises(ServeError, match="mystery"):
        ServeJournal.recover(str(tmp_path))
