"""The OptimizationService end to end, in process.

These tests drive the real service — resident worker subprocesses,
journal, cache, ladder — directly on an event loop, without HTTP.
Admission-only scenarios use ``workers=0`` so nothing dispatches and
queue/deadline behaviour is observable in isolation.
"""

import asyncio

from repro.serve.config import ServeOptions
from repro.serve.service import OptimizationService

PROGRAM = """
proc main() {
    var v = input();
    if (v > 0) { if (v > 0) { print 1; } }
    return 0;
}
"""


def _options(tmp_path, **overrides):
    settings = dict(run_dir=str(tmp_path / "run"), workers=1,
                    heartbeat_interval_s=0.1, heartbeat_timeout_s=10.0,
                    backoff_base_s=0.0, backoff_max_s=0.0,
                    timeout_s=30.0, drain_grace_s=3.0, seed=3)
    settings.update(overrides)
    return ServeOptions(**settings)


async def _await_done(service, job_id, timeout_s=30.0):
    job = service.jobs[job_id]
    await asyncio.wait_for(job.done_event().wait(), timeout_s)
    return job


async def _submit(service, body, client="tests"):
    return await service.submit(body, client)


def test_submit_runs_to_ok_then_identical_resubmit_is_cached(tmp_path):
    async def scenario():
        service = OptimizationService(_options(tmp_path))
        await service.start()
        try:
            status, payload, _ = await _submit(service,
                                               {"source": PROGRAM})
            assert status == 202 and payload["state"] == "queued"
            job = await _await_done(service, payload["id"])
            assert job.result["status"] == "OK"
            assert job.result["tier"] == 0
            assert job.result["counts"]
            # Byte-different, graph-identical resubmission: cache hit,
            # no new job id, no new attempt.
            status, hit, _ = await _submit(
                service, {"source": PROGRAM + "\n// restyled\n"})
            assert status == 200
            assert hit["cached"] is True
            assert hit["result"]["status"] == "OK"
            assert hit["key"] == payload["key"]
        finally:
            await service.stop(grace_s=0.5)

    asyncio.run(scenario())


def test_inflight_twins_coalesce_to_one_attempt(tmp_path):
    async def scenario():
        service = OptimizationService(_options(tmp_path))
        await service.start()
        try:
            s1, p1, _ = await _submit(service, {"source": PROGRAM})
            s2, p2, _ = await _submit(service, {"source": PROGRAM})
            assert (s1, s2) == (202, 202)
            assert p2["coalesced_with"] == p1["id"]
            leader = await _await_done(service, p1["id"])
            follower = await _await_done(service, p2["id"], timeout_s=5.0)
            assert leader.result["status"] == "OK"
            assert follower.result["status"] == "OK"
            assert follower.result["coalesced"] is True
            assert follower.attempts == []  # no work of its own
        finally:
            await service.stop(grace_s=0.5)

    asyncio.run(scenario())


def test_admission_refusals_rate_limit_queue_full_draining(tmp_path):
    async def scenario():
        # workers=0: no dispatch, pure admission control.
        service = OptimizationService(_options(
            tmp_path, workers=0, queue_limit=2,
            rate_capacity=3.0, rate_refill_per_s=0.001))
        await service.start()
        try:
            # Distinct suites: identical keys would coalesce with the
            # in-flight twin instead of consuming queue slots.
            s1, _, _ = await _submit(service, {"suite": "li_like@1"})
            s2, _, _ = await _submit(service, {"suite": "m88ksim_like@1"},
                                     client="other")
            s3, p3, h3 = await _submit(service, {"suite": "go_like@1"},
                                       client="other")
            assert (s1, s2) == (202, 202)
            assert s3 == 429 and p3["error"] == "queue-full"
            assert int(h3["Retry-After"]) >= 1
            # Fourth request from the first client trips its bucket.
            for _ in range(3):
                status, payload, headers = await _submit(
                    service, {"suite": "compress_like@1"})
            assert status == 429 and payload["error"] == "rate-limited"
            assert int(headers["Retry-After"]) >= 1
        finally:
            await service.stop(grace_s=0.0)
        # Draining: everything new is refused with 503.
        status, payload, _ = await _submit(service, {"source": PROGRAM})
        assert status == 503 and payload["error"] == "draining"

    asyncio.run(scenario())


def test_invalid_submissions_get_400_with_context(tmp_path):
    async def scenario():
        service = OptimizationService(_options(tmp_path, workers=0))
        await service.start()
        try:
            status, payload, _ = await _submit(service, {"suite": "nope@1"})
            assert status == 400
            assert "unknown suite" in payload["message"]
            status, payload, _ = await _submit(
                service, {"source": "proc main() { print 1 }"})
            assert status == 400 and payload["error"] == "ParseError"
            status, payload, _ = await _submit(service, {})
            assert status == 400 and "exactly one" in payload["message"]
        finally:
            await service.stop(grace_s=0.0)

    asyncio.run(scenario())


def test_queued_deadline_expiry_is_a_definite_failure(tmp_path):
    async def scenario():
        service = OptimizationService(_options(tmp_path, workers=0))
        await service.start()
        try:
            status, payload, _ = await _submit(
                service, {"source": PROGRAM, "deadline_s": 0.05})
            assert status == 202
            job = await _await_done(service, payload["id"], timeout_s=10.0)
            assert job.result["status"] == "FAILED"
            assert "deadline exceeded" in job.result["reason"]
            assert service.queue.depth == 0  # dequeued, not leaked
        finally:
            await service.stop(grace_s=0.0)

    asyncio.run(scenario())


def test_injected_crash_degrades_one_tier_and_pool_heals(tmp_path):
    async def scenario():
        service = OptimizationService(_options(tmp_path, workers=1))
        await service.start()
        try:
            status, payload, _ = await _submit(
                service, {"source": PROGRAM,
                          "inject": {"kind": "crash", "tiers": [0]}})
            assert status == 202
            job = await _await_done(service, payload["id"], timeout_s=45.0)
            assert job.result["status"] == "DEGRADED"
            assert job.result["tier"] == 1
            assert [a["result"] for a in job.attempts] == ["crash", "ok"]
            # The crashed worker was replaced, not mourned.
            deadline = asyncio.get_running_loop().time() + 10.0
            while (service.pool.live_count() < 1
                   and asyncio.get_running_loop().time() < deadline):
                await asyncio.sleep(0.05)
            assert service.pool.live_count() >= 1
            # A chaos job must never poison the cache: resubmitting the
            # same source without the inject runs fresh at tier 0.
            status, clean, _ = await _submit(service, {"source": PROGRAM})
            assert status == 202  # not a cache hit
            fresh = await _await_done(service, clean["id"])
            assert fresh.result["status"] == "OK"
        finally:
            await service.stop(grace_s=0.5)

    asyncio.run(scenario())


def test_restart_recovers_checkpointed_jobs_and_completes_them(tmp_path):
    options = _options(tmp_path, workers=0)

    async def interrupted():
        service = OptimizationService(options)
        await service.start()
        status, payload, _ = await _submit(service, {"source": PROGRAM})
        assert status == 202
        await service.stop(grace_s=0.0)  # dies with the job still queued
        return payload["id"]

    async def restarted(job_id):
        service = OptimizationService(_options(tmp_path, workers=1))
        await service.start()
        try:
            assert service.describe()["jobs"]["recovered"] == 1
            job = service.jobs[job_id]  # same id across the restart
            done = await _await_done(service, job.id)
            assert done.result["status"] == "OK"
        finally:
            await service.stop(grace_s=0.5)

    job_id = asyncio.run(interrupted())
    asyncio.run(restarted(job_id))


def test_breaker_opens_after_threshold_and_fails_fast(tmp_path):
    async def scenario():
        service = OptimizationService(_options(
            tmp_path, workers=1, breaker_threshold=2))
        await service.start()
        try:
            # Crash on every tier: two hard deaths open the breaker and
            # the job fails fast instead of descending the whole ladder.
            status, payload, _ = await _submit(
                service, {"source": PROGRAM, "class": "crashy",
                          "inject": {"kind": "crash",
                                     "tiers": [0, 1, 2, 3]}})
            assert status == 202
            job = await _await_done(service, payload["id"], timeout_s=60.0)
            assert job.result["status"] == "FAILED"
            assert "circuit breaker open" in job.result["reason"]
            hard = [a for a in job.attempts if a["result"] == "crash"]
            assert len(hard) == 2
            assert service.describe()["breaker"]["open"].keys() == {"crashy"}
        finally:
            await service.stop(grace_s=0.5)

    asyncio.run(scenario())
