"""Admission control: the bounded queue and per-client rate limits."""

from repro.serve.models import JobRecord
from repro.serve.queue import BoundedJobQueue
from repro.serve.ratelimit import RateLimiter, TokenBucket


def _job(jid, priority=5):
    return JobRecord(id=jid, job_source=f"{jid}.mc", name=jid,
                     job_class="t", key=f"key-{jid}", priority=priority)


# -- the bounded priority queue ---------------------------------------------

def test_offer_is_bounded_with_retry_after():
    queue = BoundedJobQueue(limit=2, nominal_job_s=2.0, workers=1)
    assert queue.offer(_job("a")).admitted
    assert queue.offer(_job("b")).admitted
    refusal = queue.offer(_job("c"))
    assert not refusal.admitted
    assert refusal.reason == "queue-full"
    assert refusal.retry_after_s >= 2  # two queued jobs at 2s nominal
    assert queue.depth == 2


def test_requeue_is_never_refused():
    queue = BoundedJobQueue(limit=1)
    assert queue.offer(_job("a")).admitted
    # Ladder retries of admitted jobs bypass the bound entirely.
    queue.requeue(_job("retry-1"))
    queue.requeue(_job("retry-2"))
    assert queue.depth == 3


def test_priority_then_fifo_order():
    queue = BoundedJobQueue(limit=10)
    queue.offer(_job("low-1", priority=9))
    queue.offer(_job("hot", priority=1))
    queue.offer(_job("low-2", priority=9))
    assert [queue.take().id for _ in range(3)] == ["hot", "low-1", "low-2"]
    assert queue.take() is None


def test_remove_drops_exactly_one_queued_job():
    queue = BoundedJobQueue(limit=10)
    jobs = [_job(f"j{i}") for i in range(4)]
    for job in jobs:
        queue.offer(job)
    assert queue.remove(jobs[2])
    assert not queue.remove(jobs[2])  # already gone
    remaining = [queue.take().id for _ in range(queue.depth)]
    assert remaining == ["j0", "j1", "j3"]


# -- token buckets ----------------------------------------------------------

def test_token_bucket_burst_then_refill():
    bucket = TokenBucket(capacity=2.0, refill_per_s=1.0, now=0.0)
    assert bucket.allow(0.0) == (True, 0.0)
    assert bucket.allow(0.0) == (True, 0.0)
    ok, wait = bucket.allow(0.0)
    assert not ok and wait == 1.0  # one full token away
    # Half a second later: still short, wait shrinks accordingly.
    ok, wait = bucket.allow(0.5)
    assert not ok and abs(wait - 0.5) < 1e-9
    # After the refill the next request passes.
    assert bucket.allow(1.5)[0]


def test_rate_limiter_is_per_client_with_integral_retry_after():
    clock = {"now": 0.0}
    limiter = RateLimiter(capacity=1.0, refill_per_s=0.25,
                          clock=lambda: clock["now"])
    assert limiter.allow("alice") == (True, 0)
    refused, retry_after = limiter.allow("alice")
    assert not refused or retry_after == 0
    allowed, retry_after = limiter.allow("alice")
    assert not allowed
    assert retry_after == 4  # ceil(1 token / 0.25 per s)
    # Other clients are untouched.
    assert limiter.allow("bob") == (True, 0)
    clock["now"] = 4.0
    assert limiter.allow("alice") == (True, 0)


def test_rate_limiter_table_is_bounded_lru():
    limiter = RateLimiter(capacity=5.0, refill_per_s=1.0, max_clients=3,
                          clock=lambda: 0.0)
    for name in ("a", "b", "c", "d"):
        assert limiter.allow(name)[0]
    assert len(limiter) == 3  # "a" evicted
    # An evicted client returns with a full bucket — generous, not unfair.
    assert limiter.allow("a")[0]


def test_zero_refill_reports_a_finite_retry_after():
    limiter = RateLimiter(capacity=1.0, refill_per_s=0.0,
                          clock=lambda: 0.0)
    assert limiter.allow("x")[0]
    allowed, retry_after = limiter.allow("x")
    assert not allowed
    assert retry_after == 3600
