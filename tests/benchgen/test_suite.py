import pytest

from repro.benchgen.suite import (benchmark_names, benchmark_suite,
                                  load_benchmark)
from repro.interp import run_icfg
from repro.ir import lower_program, verify_icfg


def test_suite_has_six_benchmarks():
    names = benchmark_names()
    assert len(names) == 6
    assert set(names) == {"go_like", "m88ksim_like", "compress_like",
                          "li_like", "perl_like", "icc_like"}


@pytest.mark.parametrize("name", benchmark_names())
def test_benchmark_lowers_and_verifies(name):
    bench = load_benchmark(name)
    icfg = lower_program(bench.program)
    verify_icfg(icfg)
    assert icfg.conditional_node_count() >= 5


@pytest.mark.parametrize("name", benchmark_names())
def test_benchmark_runs_clean_on_ref_workload(name):
    bench = load_benchmark(name)
    icfg = lower_program(bench.program)
    result = run_icfg(icfg, bench.workload)
    assert result.status == "ok", result.fault_message
    assert result.output, "benchmarks should produce observable output"
    assert result.profile.executed_conditionals > 20


@pytest.mark.parametrize("name", benchmark_names())
def test_benchmark_is_deterministic(name):
    first = load_benchmark(name)
    second = load_benchmark(name)
    assert first.source == second.source
    assert first.workload.values == second.workload.values
    icfg = lower_program(first.program)
    assert (run_icfg(icfg, first.workload).observable
            == run_icfg(icfg, second.workload).observable)


def test_suite_entries_independent():
    suite = benchmark_suite()
    suite["go_like"].workload.next_value()
    fresh = benchmark_suite()
    assert fresh["go_like"].workload.consumed == 0


def test_source_lines_metric_positive():
    for name in benchmark_names():
        assert load_benchmark(name).source_lines > 20


def test_scaled_suite_lowers_and_runs():
    bench = load_benchmark("compress_like", scale=4)
    icfg = lower_program(bench.program)
    verify_icfg(icfg)
    from repro.interp import run_icfg
    result = run_icfg(icfg, bench.workload, step_limit=5_000_000)
    assert result.status == "ok"
    assert icfg.node_count() > 1000


def test_scaled_suite_keeps_core_behaviour_prefix():
    """The scaled main runs the core first, so the core's output is a
    prefix of the scaled program's output."""
    from repro.interp import run_icfg
    core = load_benchmark("go_like")
    scaled = load_benchmark("go_like", scale=2)
    core_icfg = lower_program(core.program)
    scaled_icfg = lower_program(scaled.program)
    core_out = run_icfg(core_icfg, core.workload).output
    scaled_out = run_icfg(scaled_icfg, scaled.workload,
                          step_limit=5_000_000).output
    assert scaled_out[:len(core_out)] == core_out


def test_scale_is_deterministic():
    first = load_benchmark("li_like", scale=3)
    second = load_benchmark("li_like", scale=3)
    from repro.lang.pretty import pretty_print
    assert pretty_print(first.program) == pretty_print(second.program)
    assert first.workload.values == second.workload.values
