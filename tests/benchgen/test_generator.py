from repro.benchgen import GeneratorOptions, generate_program
from repro.interp import Workload, run_icfg
from repro.ir import lower_program, verify_icfg
from repro.lang import parse_program, pretty_print
from repro.lang.sema import check_program


def test_deterministic_per_seed():
    first = pretty_print(generate_program(42))
    second = pretty_print(generate_program(42))
    assert first == second


def test_different_seeds_differ():
    assert pretty_print(generate_program(1)) != pretty_print(
        generate_program(2))


def test_generated_programs_are_semantically_valid():
    for seed in range(10):
        program = generate_program(seed)
        check_program(program)  # raises on failure


def test_generated_programs_lower_and_verify():
    for seed in range(10):
        icfg = lower_program(generate_program(seed))
        verify_icfg(icfg)


def test_generated_programs_terminate_and_do_not_fault():
    for seed in range(10):
        icfg = lower_program(generate_program(seed))
        result = run_icfg(icfg, Workload.random(40, seed=seed),
                          step_limit=500_000)
        assert result.status == "ok", (seed, result.fault_message)


def test_pretty_printed_output_reparses():
    for seed in range(5):
        text = pretty_print(generate_program(seed))
        reparsed = parse_program(text)
        assert pretty_print(reparsed) == text


def test_options_control_size():
    small = generate_program(7, GeneratorOptions(procedures=1,
                                                 statements_per_proc=3))
    large = generate_program(7, GeneratorOptions(procedures=8,
                                                 statements_per_proc=14))
    assert len(pretty_print(large)) > len(pretty_print(small))


def test_library_procedures_present():
    program = generate_program(3)
    names = program.proc_names()
    assert any(name.startswith("lib_getter") for name in names)
    assert any(name.startswith("lib_guarded") for name in names)
    assert any(name.startswith("lib_flag") for name in names)


def test_heap_free_option():
    program = generate_program(5, GeneratorOptions(use_heap=False,
                                                   idiom_probability=0.0))
    text = pretty_print(program)
    assert "alloc(" not in text
    assert "store(" not in text
