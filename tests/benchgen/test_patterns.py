import random

from repro.benchgen import patterns
from repro.interp import Workload, run_icfg
from repro.ir import lower_program, verify_icfg
from repro.lang import ast
from repro.lang.sema import check_program


def wrap(procs, main_body, globals_=("err",)):
    program = ast.Program()
    for name in globals_:
        program.globals.append(ast.GlobalDecl(name=name, init=0))
    program.procs.extend(procs)
    program.procs.append(ast.ProcDef(name="main", params=[],
                                     body=main_body))
    return program


def call(name, *args):
    return ast.CallExpr(name=name,
                        args=[ast.IntLit(value=a) for a in args])


def test_getter_classifies_error_and_value():
    getter = patterns.getter_with_error_return("get", offset=2)
    program = wrap([getter], [
        ast.Print(value=call("get", -3)),
        ast.Print(value=call("get", 5)),
    ])
    check_program(program)
    result = run_icfg(lower_program(program), Workload([]))
    assert result.output[0] == -1
    assert result.output[1] == 7  # (unsigned)(5+2)


def test_getter_result_never_in_gap():
    getter = patterns.getter_with_error_return("get", offset=0)
    program = wrap([getter], [
        ast.Print(value=call("get", v)) for v in (-9, 0, 1, 250, 300)
    ])
    result = run_icfg(lower_program(program), Workload([]))
    for value in result.output:
        assert value == -1 or 0 <= value <= 255


def test_guarded_worker_rejects_zero():
    worker = patterns.guarded_worker("work", scale=3)
    program = wrap([worker], [
        ast.Print(value=call("work", 0)),
        ast.Print(value=call("work", 4)),
    ])
    result = run_icfg(lower_program(program), Workload([]))
    assert result.output == [-2, 12]


def test_flag_setter_sets_global():
    setter = patterns.flag_setter("may_fail", "err", threshold=0)
    program = wrap([setter], [
        ast.Assign(name="err", value=ast.IntLit(value=9)),
        ast.Print(value=call("may_fail", -1)),
        ast.Print(value=ast.VarRef(name="err")),
        ast.Print(value=call("may_fail", 5)),
        ast.Print(value=ast.VarRef(name="err")),
    ])
    result = run_icfg(lower_program(program), Workload([]))
    assert result.output == [0, 1, 5, 0]


def test_build_library_cycles_all_kinds():
    procs = patterns.build_library(random.Random(0), count=8,
                                   flag_global="err")
    kinds = {p.name.split("_")[1].rstrip("0123456789") for p in procs}
    assert kinds == {"getter", "guarded", "flag", "recur"}
    program = wrap(procs, [ast.Return(value=ast.IntLit(value=0))])
    check_program(program)
    verify_icfg(lower_program(program))


def test_bounded_recursive_terminates_and_accumulates():
    recur = patterns.bounded_recursive("walk", step=2)
    program = wrap([recur], [
        ast.Print(value=call("walk", 4)),
        ast.Print(value=call("walk", 0)),
        ast.Print(value=call("walk", -3)),
    ])
    result = run_icfg(lower_program(program), Workload([]))
    assert result.output == [8, 0, 0]
