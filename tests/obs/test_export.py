"""Exporters: JSONL round-trip, Chrome trace shape, profile table."""

import json

from repro import obs
from repro.obs.export import (TRACE_SCHEMA_VERSION, aggregate_spans,
                              read_jsonl, render_profile, to_chrome_trace,
                              write_jsonl)


def _session_with_work():
    with obs.session() as active:
        with obs.span("outer", proc="main"):
            with obs.span("inner"):
                pass
        obs.add("things", 3)
    return active


def test_jsonl_roundtrip(tmp_path):
    active = _session_with_work()
    path = str(tmp_path / "trace.jsonl")
    active.write_jsonl(path, meta={"command": "test"})

    lines = [json.loads(line)
             for line in open(path, encoding="utf-8")]
    assert lines[0]["type"] == "trace"
    assert lines[0]["version"] == TRACE_SCHEMA_VERSION
    assert lines[0]["meta"] == {"command": "test"}
    assert [r["name"] for r in lines if r["type"] == "span"] == [
        "outer", "inner"]
    assert lines[-1]["type"] == "metrics"

    data = read_jsonl(path)
    assert data["meta"] == {"command": "test"}
    assert len(data["spans"]) == 2
    assert data["metrics"]["counters"]["things"] == 3


def test_chrome_trace_shape():
    active = _session_with_work()
    chrome = to_chrome_trace(active.export_spans(), process_name="icbe")
    events = chrome["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 2
    assert metadata, "process/thread metadata events expected"
    for event in complete:
        assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
        assert event["ts"] >= 0          # rebased to the earliest span
        assert event["dur"] >= 0
    assert chrome["displayTimeUnit"] == "ms"
    # Spans with distinct origins land in distinct lanes.
    lanes = {e["tid"] for e in complete}
    assert len(lanes) == 1               # same origin here


def test_chrome_trace_lanes_follow_origin():
    tracer = obs.Tracer()
    tracer.record("a", 0.0, 1.0)
    tracer.record("b", 0.0, 1.0, origin="worker:li")
    complete = [e for e in to_chrome_trace(tracer.export())["traceEvents"]
                if e["ph"] == "X"]
    assert len({e["tid"] for e in complete}) == 2


def test_aggregate_and_profile_table():
    active = _session_with_work()
    rows = aggregate_spans(active.export_spans())
    assert rows["outer"]["calls"] == 1
    # Self time excludes the direct child's duration.
    assert rows["outer"]["self_s"] <= rows["outer"]["total_s"]
    table = render_profile(active.export_spans())
    assert "span" in table.splitlines()[0]
    assert "outer" in table and "inner" in table


def test_export_cli_converts_to_chrome(tmp_path, capsys):
    from repro.obs.export import main

    active = _session_with_work()
    trace = str(tmp_path / "t.jsonl")
    chrome = str(tmp_path / "t.json")
    active.write_jsonl(trace)
    assert main([trace, chrome]) == 0
    data = json.load(open(chrome, encoding="utf-8"))
    assert any(e["ph"] == "X" for e in data["traceEvents"])
