"""Hierarchical spans: nesting, exception safety, adoption."""

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, Tracer


def test_spans_nest_by_stack_discipline():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        with tracer.span("sibling") as sibling:
            assert sibling.parent_id == outer.span_id
    assert outer.parent_id == 0
    # spans finish inner-first; export() restores start order.
    assert [s["name"] for s in tracer.export()] == [
        "outer", "inner", "sibling"]


def test_span_times_are_monotonic_and_closed():
    tracer = Tracer()
    with tracer.span("a") as span:
        pass
    assert span.end_s is not None
    assert span.duration_s >= 0.0
    assert span.status == "ok"


def test_span_attributes_at_open_and_via_set():
    tracer = Tracer()
    with tracer.span("a", proc="main") as span:
        span.set(nodes=5)
    record = span.to_json()
    assert record["attrs"] == {"proc": "main", "nodes": 5}


def test_exception_marks_span_as_error_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("boom")
    statuses = {s.name: s.status for s in tracer.spans}
    assert statuses == {"outer": "error", "inner": "error"}
    errors = {s.name: s.error for s in tracer.spans}
    assert "boom" in errors["inner"]


def test_leaked_descendants_are_force_closed():
    tracer = Tracer()
    outer = tracer.span("outer")
    tracer.span("leaked")          # never finished by its opener
    tracer.finish(outer)
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["leaked"].status == "leaked"
    assert by_name["leaked"].end_s is not None
    assert tracer.current is None


def test_retrospective_record():
    tracer = Tracer()
    span = tracer.record("late", 1.0, 3.5, job="x")
    assert span.duration_s == pytest.approx(2.5)
    assert tracer.export()[0]["name"] == "late"


def test_adopt_remaps_reparents_and_rebases():
    worker = Tracer()
    with worker.span("worker.attempt"):
        with worker.span("optimize"):
            pass
    records = worker.export()

    host = Tracer()
    parent = host.record("batch.attempt", 100.0, 101.0)
    adopted = host.adopt(records, parent_id=parent.span_id,
                         clock_offset_s=50.0, origin="worker:li")
    assert adopted == 2
    by_name = {s.name: s for s in host.spans}
    root = by_name["worker.attempt"]
    child = by_name["optimize"]
    # Foreign root re-parented under the host span; child under root.
    assert root.parent_id == parent.span_id
    assert child.parent_id == root.span_id
    # Ids live in the host's id space (no collision with parent).
    assert len({s.span_id for s in host.spans}) == 3
    # Clock rebased by the offset.
    assert root.start_s == pytest.approx(records[0]["start_s"] + 50.0)
    assert root.attrs["origin"] == "worker:li"


def test_null_span_is_inert():
    assert obs.span("anything") is NULL_SPAN
    with obs.span("anything") as span:
        span.set(ignored=1)        # must not raise


def test_sessions_do_not_nest():
    with obs.session():
        with pytest.raises(RuntimeError):
            with obs.session():
                pass


def test_suspended_restores_the_active_session():
    with obs.session() as active:
        with obs.suspended():
            assert not obs.enabled()
            with obs.session() as inner:
                assert obs.current() is inner
        assert obs.current() is active


def test_module_level_span_routes_to_active_session():
    with obs.session() as active:
        with obs.span("analysis.correlation", branch=3) as span:
            assert span is not NULL_SPAN
    assert [s["name"] for s in active.export_spans()] == [
        "analysis.correlation"]
