"""The <2% disabled-overhead budget, asserted robustly.

A naive A/B wall-clock comparison of instrumented-vs-not runs flakes on
shared CI machines, so the assertion is computed instead of raced: run
once *enabled* to count every instrumentation event the workload emits
(spans opened + registry updates), microbenchmark the *disabled*
per-call cost of the fast paths, and require

    events x per_call_cost  <  2% of the disabled workload's wall time.

Each factor is measured best-of-N, which is stable; the product is the
worst-case overhead instrumentation can add when no session is active.
"""

import time

from repro import obs

OVERHEAD_BUDGET = 0.02


def _workload():
    from repro.benchgen.suite import load_benchmark
    from repro.ir import lower_program
    from repro.transform import ICBEOptimizer, OptimizerOptions

    icfg = lower_program(load_benchmark("li_like").program)
    ICBEOptimizer(OptimizerOptions(duplication_limit=100)).optimize(icfg)


def _count_events() -> int:
    """Instrumentation events one workload run emits when enabled."""
    with obs.session() as active:
        _workload()
    return len(active.tracer.spans) + active.metrics.total_updates


def _disabled_wall_s(repeats: int = 3) -> float:
    assert not obs.enabled()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _workload()
        best = min(best, time.perf_counter() - started)
    return best


def _disabled_per_call_s(calls: int = 20_000) -> float:
    """Best-of-3 cost of one disabled ``span`` + one disabled ``add``."""
    assert not obs.enabled()
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(calls):
            with obs.span("x", a=1):
                pass
            obs.add("c")
        best = min(best, time.perf_counter() - started)
    return best / calls


def test_disabled_overhead_is_under_two_percent():
    events = _count_events()
    assert events > 100, "workload should be well instrumented"
    wall_s = _disabled_wall_s()
    per_call_s = _disabled_per_call_s()
    worst_case = events * per_call_s
    ratio = worst_case / wall_s
    assert ratio < OVERHEAD_BUDGET, (
        f"{events} events x {per_call_s * 1e9:.0f}ns = "
        f"{worst_case * 1e3:.2f}ms on a {wall_s * 1e3:.1f}ms run "
        f"({ratio:.1%} > {OVERHEAD_BUDGET:.0%} budget)")


def test_null_span_fast_path_has_no_allocation_per_call():
    """The disabled path returns one shared singleton."""
    first = obs.span("a", x=1)
    second = obs.span("b")
    assert first is second
