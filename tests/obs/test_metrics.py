"""The metrics registry: counters, gauges, histograms, determinism."""

import json

from repro import obs
from repro.obs.metrics import HISTOGRAM_BOUNDS, MetricsRegistry


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.add("c", 2)
    registry.add("c")
    registry.set("g", 7)
    registry.set("g", 3)
    registry.observe("h", 5)
    registry.observe("h", 500)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["c"] == 3
    assert snapshot["gauges"]["g"] == 3
    hist = snapshot["histograms"]["h"]
    assert hist["count"] == 2
    assert hist["total"] == 505
    assert hist["min"] == 5 and hist["max"] == 500


def test_histogram_buckets_are_powers_of_two():
    assert HISTOGRAM_BOUNDS[0] == 1
    assert all(b == 2 ** i for i, b in enumerate(HISTOGRAM_BOUNDS))


def test_snapshot_is_sorted_and_json_stable():
    registry = MetricsRegistry()
    registry.add("zebra")
    registry.add("aardvark")
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["aardvark", "zebra"]
    # Same updates in a different order -> byte-identical snapshot.
    other = MetricsRegistry()
    other.add("aardvark")
    other.add("zebra")
    assert (json.dumps(snapshot, sort_keys=True)
            == json.dumps(other.snapshot(), sort_keys=True))


def test_merge_adds_counters_and_merges_histograms():
    a = MetricsRegistry()
    a.add("c", 1)
    a.observe("h", 3)
    b = MetricsRegistry()
    b.add("c", 2)
    b.observe("h", 100)
    a.merge(b.snapshot())
    snapshot = a.snapshot()
    assert snapshot["counters"]["c"] == 3
    assert snapshot["histograms"]["h"]["count"] == 2
    assert snapshot["histograms"]["h"]["max"] == 100


def _optimize_snapshot():
    from repro.benchgen.suite import load_benchmark
    from repro.ir import lower_program
    from repro.transform import ICBEOptimizer, OptimizerOptions

    icfg = lower_program(load_benchmark("li_like").program)
    with obs.session() as active:
        ICBEOptimizer(OptimizerOptions(
            duplication_limit=100, diff_seed=7)).optimize(icfg)
        return active.metrics.snapshot()


def test_optimizer_metrics_are_byte_identical_across_runs():
    """The acceptance criterion: no timing ever enters the registry, so
    two same-seed optimizer runs snapshot to identical bytes."""
    first = json.dumps(_optimize_snapshot(), sort_keys=True)
    second = json.dumps(_optimize_snapshot(), sort_keys=True)
    assert first == second
    # And the run actually produced the expected families of metrics.
    counters = json.loads(first)["counters"]
    for name in ("analysis.branches_analyzed", "analysis.pairs_examined",
                 "optimize.optimized", "transform.branches_eliminated",
                 "transform.snapshots_taken", "cache.queries_interned"):
        assert name in counters, name


def test_durations_never_enter_the_registry():
    """Spans carry the timings; the registry must stay deterministic."""
    snapshot = _optimize_snapshot()
    for kind in ("counters", "gauges"):
        for name, value in snapshot[kind].items():
            assert float(value) == int(value), (
                f"{kind[:-1]} {name!r} holds a non-integral value "
                f"{value!r} — that smells like a duration")
