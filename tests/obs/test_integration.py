"""End-to-end observability: CLI --trace, supervisor adoption, sidecar."""

import json
import os

from repro import obs
from repro.cli import main as cli_main
from repro.obs.export import read_jsonl


def test_cli_trace_covers_the_whole_optimizer_span_tree(tmp_path):
    """The acceptance criterion: ``icbe ... --trace out.jsonl`` on
    li_like yields valid JSONL whose span tree covers
    parse -> lower -> analysis -> restructure -> verify."""
    trace = str(tmp_path / "out.jsonl")
    assert cli_main(["optimize", "suite:li_like@1", "--trace", trace]) == 0
    data = read_jsonl(trace)
    names = {record["name"] for record in data["spans"]}
    assert {"cli.optimize", "frontend.parse", "ir.lower",
            "analysis.correlation", "pass.restructure",
            "ir.verify"} <= names
    # Well-formed tree: every parent id exists, the root is cli.optimize.
    ids = {record["id"] for record in data["spans"]}
    roots = [r for r in data["spans"] if r["parent"] == 0]
    assert [r["name"] for r in roots] == ["cli.optimize"]
    assert all(r["parent"] in ids for r in data["spans"]
               if r["parent"] != 0)
    assert data["metrics"]["counters"]["optimize.runs"] == 1


def test_cli_run_traces_and_uses_suite_reference_workload(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    assert cli_main(["run", "suite:li_like@1", "--trace", trace]) == 0
    names = {record["name"] for record in read_jsonl(trace)["spans"]}
    assert {"cli.run", "frontend.parse", "ir.lower", "ir.verify",
            "interp.run"} <= names


def test_trace_file_written_even_when_the_command_fails(tmp_path):
    trace = str(tmp_path / "fail.jsonl")
    missing = str(tmp_path / "nope.mc")
    assert cli_main(["optimize", missing, "--trace", trace]) == 2
    data = read_jsonl(trace)
    assert data["meta"]["command"] == "optimize"


def _batch(run_dir, trace=False):
    from repro.robustness.supervisor import run_batch, SupervisorOptions

    options = SupervisorOptions(jobs=2, timeout_s=60, seed=3)
    if not trace:
        return run_batch(["suite:compress_like@1"], run_dir,
                         options=options), None
    with obs.session() as active:
        report = run_batch(["suite:compress_like@1"], run_dir,
                           options=options)
    return report, active


def test_supervisor_adopts_worker_spans_and_keeps_journal_bytes(tmp_path):
    plain_dir = str(tmp_path / "plain")
    traced_dir = str(tmp_path / "traced")
    _batch(plain_dir)
    report, active = _batch(traced_dir, trace=True)

    # Tracing must not perturb the journal or report bytes.
    for name in ("journal.jsonl", "report.txt"):
        plain = open(os.path.join(plain_dir, name), "rb").read()
        traced = open(os.path.join(traced_dir, name), "rb").read()
        assert plain == traced, name

    # Worker spans crossed the subprocess boundary and re-parented.
    spans = active.export_spans()
    by_id = {record["id"]: record for record in spans}
    adopted = [record for record in spans
               if (record.get("attrs") or {}).get("origin")]
    assert adopted, "expected spans adopted from the worker"
    for record in adopted:
        parent = record["parent"]
        assert parent in by_id
        chain = set()
        while parent:
            chain.add(by_id[parent]["name"])
            parent = by_id[parent]["parent"]
        assert "batch.attempt" in chain
    assert {"batch.run", "batch.attempt", "worker.attempt",
            "optimize"} <= {record["name"] for record in spans}
    # Worker metrics merged into the supervisor's registry.
    counters = active.metrics.snapshot()["counters"]
    assert counters.get("optimize.runs", 0) >= 1
    assert counters.get("batch.attempts") == 1


def test_telemetry_sidecar_and_rollup(tmp_path):
    run_dir = str(tmp_path / "run")
    report, _ = _batch(run_dir)
    sidecar = os.path.join(run_dir, "telemetry.jsonl")
    records = [json.loads(line) for line in open(sidecar, encoding="utf-8")]
    assert len(records) == 1
    record = records[0]
    assert record["job"] == "compress_like"
    assert record["result"] == "ok"
    assert record["wall_s"] > 0
    assert record["peak_rss_kb"] > 0
    rollup = report.job_telemetry()
    assert rollup["compress_like"]["attempts"] == 1
    assert rollup["compress_like"]["peak_rss_kb"] == record["peak_rss_kb"]
    # Attempts carry the telemetry in memory but never journal it.
    attempt = report.outcomes[0].attempts[0]
    assert attempt.wall_s > 0 and attempt.peak_rss_kb > 0
    assert "wall_s" not in attempt.to_json()
