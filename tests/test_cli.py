import os

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("""
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var r = classify(input());
            if (r == -1) { print 0; } else { print r; }
            return 0;
        }
    """)
    return str(path)


def test_run_prints_output_and_exit(program_file, capsys):
    code = main(["run", program_file, "--input", "5"])
    captured = capsys.readouterr()
    assert code == 0
    assert captured.out.strip() == "5"
    assert "status: ok" in captured.err


def test_run_reports_fault_status(tmp_path, capsys):
    path = tmp_path / "bad.mc"
    path.write_text("proc main() { var x = load(0); }")
    assert main(["run", str(path)]) == 1
    assert "fault" in capsys.readouterr().err


def test_dump_text_and_dot(program_file, capsys):
    assert main(["dump", program_file]) == 0
    out = capsys.readouterr().out
    assert "proc main" in out and "call classify" in out
    assert main(["dump", program_file, "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")


def test_analyze_lists_conditionals(program_file, capsys):
    assert main(["analyze", program_file]) == 0
    out = capsys.readouterr().out
    assert "r == -1" in out
    assert "TRUE" in out and "FALSE" in out


def test_analyze_intra_flag(program_file, capsys):
    assert main(["analyze", program_file, "--intra"]) == 0
    out = capsys.readouterr().out
    assert "UNDEF" in out


def test_optimize_reports_reduction(program_file, capsys):
    assert main(["optimize", program_file, "--input", "3"]) == 0
    out = capsys.readouterr().out
    assert "conditionals optimized:" in out
    assert "identical" in out
    assert "bug" not in out


def test_optimize_emit_dumps_graph(program_file, capsys):
    assert main(["optimize", program_file, "--emit"]) == 0
    assert "proc classify" in capsys.readouterr().out


def test_unknown_experiment_rejected(capsys):
    assert main(["experiment", "nonsense"]) == 2


def test_inline_subcommand(program_file, capsys):
    assert main(["inline", program_file, "--input", "4"]) == 0
    out = capsys.readouterr().out
    assert "inlined 1 call sites" in out
    assert "identical" in out


def test_inline_emit_has_no_calls_left(program_file, capsys):
    assert main(["inline", program_file, "--emit"]) == 0
    out = capsys.readouterr().out
    assert "call classify" not in out


def test_predict_subcommand(program_file, capsys):
    assert main(["predict", program_file]) == 0
    out = capsys.readouterr().out
    assert "predict" in out
    assert "r == -1" in out


def test_analyze_dot_overlay(program_file, capsys):
    assert main(["analyze", program_file, "--dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "palegreen" in out  # the fully correlated re-check


# -- operator errors: exit code 2, one-line diagnostic, no traceback ------


def test_parse_error_exits_2_with_one_line_diagnostic(tmp_path, capsys):
    path = tmp_path / "broken.mc"
    path.write_text("proc main() {\n  print 1\n}")  # missing ';'
    assert main(["optimize", str(path)]) == 2
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err.startswith("icbe: error: ")
    assert "Traceback" not in captured.err
    # The ParseError's structured .context rides along.
    assert "icbe: context:" in captured.err
    assert "line=3" in captured.err


def test_semantic_error_exits_2_and_names_the_procedure(tmp_path, capsys):
    path = tmp_path / "sema.mc"
    path.write_text("proc main() {\n  ghost = 1;\n}")
    assert main(["run", str(path)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("icbe: error: ")
    assert "proc=main" in err
    assert "Traceback" not in err


def test_missing_file_exits_2(capsys):
    assert main(["dump", "/no/such/file.mc"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("icbe: error: ")
    assert "Traceback" not in err


def test_traceback_flag_reraises(tmp_path):
    path = tmp_path / "broken.mc"
    path.write_text("proc main() { print 1 }")
    from repro.errors import ParseError
    with pytest.raises(ParseError):
        main(["--traceback", "analyze", str(path)])


# -- icbe batch -----------------------------------------------------------


def test_batch_runs_jobs_and_writes_journal(program_file, tmp_path, capsys):
    run_dir = tmp_path / "run"
    code = main(["batch", program_file, "--run-dir", str(run_dir),
                 "--seed", "1", "--backoff", "0"])
    captured = capsys.readouterr()
    assert code == 0
    assert "prog.mc: OK" in captured.out
    assert "1 ok, 0 degraded, 0 failed" in captured.out
    assert "journal:" in captured.err
    assert os.path.exists(run_dir / "journal.jsonl")
    assert os.path.exists(run_dir / "report.txt")


def test_batch_resume_skips_completed_jobs(program_file, tmp_path, capsys):
    run_dir = tmp_path / "run"
    assert main(["batch", program_file, "--run-dir", str(run_dir),
                 "--seed", "4", "--backoff", "0"]) == 0
    capsys.readouterr()
    assert main(["batch", program_file, "--resume", str(run_dir)]) == 0
    assert "resumed 1 from journal" in capsys.readouterr().out


def test_batch_failed_job_exits_1(program_file, tmp_path, capsys):
    bad = tmp_path / "bad.mc"
    bad.write_text("proc main() { print 1 }")
    code = main(["batch", program_file, str(bad),
                 "--run-dir", str(tmp_path / "run"), "--backoff", "0"])
    out = capsys.readouterr().out
    assert code == 1
    assert "bad.mc: FAILED" in out
    assert "prog.mc: OK" in out  # the good job still completed


def test_batch_bad_inject_spec_exits_2(program_file, tmp_path, capsys):
    assert main(["batch", program_file, "--run-dir", str(tmp_path / "run"),
                 "--inject", "explode:prog.mc"]) == 2
    assert "icbe: error:" in capsys.readouterr().err


def test_batch_resume_without_journal_exits_2(tmp_path, capsys):
    assert main(["batch", "--resume", str(tmp_path / "nothing")]) == 2
    err = capsys.readouterr().err
    assert "no journal to resume" in err
    assert "Traceback" not in err
