import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text("""
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var r = classify(input());
            if (r == -1) { print 0; } else { print r; }
            return 0;
        }
    """)
    return str(path)


def test_run_prints_output_and_exit(program_file, capsys):
    code = main(["run", program_file, "--input", "5"])
    captured = capsys.readouterr()
    assert code == 0
    assert captured.out.strip() == "5"
    assert "status: ok" in captured.err


def test_run_reports_fault_status(tmp_path, capsys):
    path = tmp_path / "bad.mc"
    path.write_text("proc main() { var x = load(0); }")
    assert main(["run", str(path)]) == 1
    assert "fault" in capsys.readouterr().err


def test_dump_text_and_dot(program_file, capsys):
    assert main(["dump", program_file]) == 0
    out = capsys.readouterr().out
    assert "proc main" in out and "call classify" in out
    assert main(["dump", program_file, "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")


def test_analyze_lists_conditionals(program_file, capsys):
    assert main(["analyze", program_file]) == 0
    out = capsys.readouterr().out
    assert "r == -1" in out
    assert "TRUE" in out and "FALSE" in out


def test_analyze_intra_flag(program_file, capsys):
    assert main(["analyze", program_file, "--intra"]) == 0
    out = capsys.readouterr().out
    assert "UNDEF" in out


def test_optimize_reports_reduction(program_file, capsys):
    assert main(["optimize", program_file, "--input", "3"]) == 0
    out = capsys.readouterr().out
    assert "conditionals optimized:" in out
    assert "identical" in out
    assert "bug" not in out


def test_optimize_emit_dumps_graph(program_file, capsys):
    assert main(["optimize", program_file, "--emit"]) == 0
    assert "proc classify" in capsys.readouterr().out


def test_unknown_experiment_rejected(capsys):
    assert main(["experiment", "nonsense"]) == 2


def test_inline_subcommand(program_file, capsys):
    assert main(["inline", program_file, "--input", "4"]) == 0
    out = capsys.readouterr().out
    assert "inlined 1 call sites" in out
    assert "identical" in out


def test_inline_emit_has_no_calls_left(program_file, capsys):
    assert main(["inline", program_file, "--emit"]) == 0
    out = capsys.readouterr().out
    assert "call classify" not in out


def test_predict_subcommand(program_file, capsys):
    assert main(["predict", program_file]) == 0
    out = capsys.readouterr().out
    assert "predict" in out
    assert "r == -1" in out


def test_analyze_dot_overlay(program_file, capsys):
    assert main(["analyze", program_file, "--dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "palegreen" in out  # the fully correlated re-check
