"""The circuit breaker and seeded backoff under concurrent failures.

Chaos crashes are process-level, so every test here pays for real
worker subprocesses.  The scenarios pin down three properties:

- a tripped class still *drains*: queued jobs of an open class get a
  definite FAILED, and a job that already descended the ladder keeps
  its next-tier attempt — the success path never consults the breaker;
- trip accounting is per class and bounded under ``--jobs N``;
- backoff and journal bytes are identical at any worker count.
"""

import json
import os

from repro.robustness.degrade import (STATUS_DEGRADED, STATUS_FAILED,
                                      STATUS_OK)
from repro.robustness.journal import JOURNAL_NAME
from repro.robustness.supervisor import (BatchSupervisor, JobSpec,
                                         SupervisorOptions)

PROGRAM = """
proc main() {
    var v = input();
    if (v > 0) { if (v > 0) { print 1; } }
    return 0;
}
"""

SPLIT_FAULT = {"site": "transform:split", "hit": 1, "action": "raise"}

CRASH_ALL = {"kind": "crash", "tiers": [0, 1, 2, 3]}
CRASH_T0 = {"kind": "crash", "tiers": [0]}


def _write_programs(tmp_path, names):
    paths = []
    for name in names:
        path = tmp_path / f"{name}.mc"
        path.write_text(PROGRAM)
        paths.append(str(path))
    return paths


def _options(**overrides):
    base = dict(timeout_s=20.0, backoff_base_s=0.0, seed=1)
    base.update(overrides)
    return SupervisorOptions(**base)


def _read(run_dir, name):
    with open(os.path.join(str(run_dir), name), "rb") as handle:
        return handle.read()


def _crashy_hard_attempts(report):
    return sum(1 for outcome in report.outcomes
               for attempt in outcome.attempts
               if attempt.result == "crash"
               and outcome.job.startswith("crashy"))


def test_serial_trip_is_exact_and_recovered_job_survives(tmp_path):
    # crashy1 crashes only at tier 0 and is scheduled first: it descends
    # and succeeds before its classmates burn the breaker.  crashy2
    # opens the breaker (3 consecutive hard deaths); crashy3 is drained
    # FAILED on its first crash; the healthy class never notices.
    c1, c2, c3, h1 = _write_programs(
        tmp_path, ["crashy1", "crashy2", "crashy3", "healthy1"])
    specs = [JobSpec(c1, inject=CRASH_T0),
             JobSpec(c2, inject=CRASH_ALL),
             JobSpec(c3, inject=CRASH_ALL),
             JobSpec(h1)]
    report = BatchSupervisor(
        specs, str(tmp_path / "run"),
        options=_options(jobs=1, breaker_threshold=3)).run()

    assert report.all_definite
    assert report.breaker_opened == ["crashy"]
    statuses = [o.status for o in report.outcomes]
    assert statuses == [STATUS_DEGRADED, STATUS_FAILED, STATUS_FAILED,
                        STATUS_OK]
    recovered = report.outcomes[0]
    assert recovered.tier == 1
    assert [a.result for a in recovered.attempts] == ["crash", "ok"]
    assert "circuit breaker open" in report.outcomes[1].reason
    assert "circuit breaker open" in report.outcomes[2].reason
    # 1 (crashy1) + 3 (crashy2 opens) + 1 (crashy3 drains) hard deaths.
    assert _crashy_hard_attempts(report) == 5


def test_concurrent_trip_never_steals_a_descended_jobs_success(tmp_path):
    # Three crashy jobs race under --jobs 3.  Whatever the collection
    # order, crashy1 (tier-0-only crash) must end DEGRADED at tier 1:
    # an open breaker fails *failing* attempts fast but never vetoes a
    # success already in flight.
    c1, c2, c3, h1, h2 = _write_programs(
        tmp_path, ["crashy1", "crashy2", "crashy3",
                   "healthy1", "healthy2"])
    specs = [JobSpec(c1, inject=CRASH_T0),
             JobSpec(c2, inject=CRASH_ALL),
             JobSpec(c3, inject=CRASH_ALL),
             JobSpec(h1), JobSpec(h2)]
    report = BatchSupervisor(
        specs, str(tmp_path / "run"),
        options=_options(jobs=3, breaker_threshold=4)).run()

    assert report.all_definite
    assert report.breaker_opened == ["crashy"]
    recovered = report.outcomes[0]
    assert recovered.status == STATUS_DEGRADED
    assert recovered.tier == 1
    assert [a.result for a in recovered.attempts] == ["crash", "ok"]
    assert {o.status for o in report.outcomes[1:3]} == {STATUS_FAILED}
    assert [o.status for o in report.outcomes[3:]] == [STATUS_OK,
                                                       STATUS_OK]
    # Concurrency widens the in-flight window but the count stays
    # bounded: each all-tier crasher dies at most once per tier, the
    # recovering job exactly once.
    hard = _crashy_hard_attempts(report)
    assert 4 <= hard <= 9


def test_faulted_retries_journal_identically_at_any_worker_count(tmp_path):
    # Seeded backoff + the ladder under concurrency: a batch where
    # every job retries once (in-optimizer fault, tier 0 -> 1) must
    # journal byte-identically with 1 and with 3 workers.
    sources = _write_programs(tmp_path, ["flaky1", "flaky2", "flaky3"])

    def run(jobs, run_dir):
        specs = [JobSpec(source, faults=(SPLIT_FAULT,), strict=True)
                 for source in sources]
        return BatchSupervisor(
            specs, str(run_dir),
            options=_options(jobs=jobs, backoff_base_s=0.01,
                             seed=7)).run()

    serial = run(1, tmp_path / "serial")
    parallel = run(3, tmp_path / "parallel")
    assert all(o.status == STATUS_DEGRADED for o in serial.outcomes)
    assert (_read(tmp_path / "serial", JOURNAL_NAME)
            == _read(tmp_path / "parallel", JOURNAL_NAME))
    # Backoffs are journaled (they shaped the run) and seeded: equal
    # per job across worker counts, non-zero after the first failure.
    records = [json.loads(line) for line in
               _read(tmp_path / "serial", JOURNAL_NAME).splitlines()]
    backoffs = [attempt["backoff_s"]
                for record in records if record["type"] == "job"
                for attempt in record["outcome"]["attempts"]
                if attempt["result"] == "ok"]
    assert len(backoffs) == 3
    assert all(b > 0 for b in backoffs)
