"""Loader failures are definite, contextual, and non-retryable.

A job whose *input* cannot be loaded (file deleted, unknown suite
reference, unreadable bytes) must fail exactly once with a structured
``context`` — not crash the supervisor, and not burn the whole
degradation ladder retrying an error no tier can fix.
"""

import json
import os
import signal

import pytest

from repro.robustness.degrade import (Attempt, JobOutcome, STATUS_FAILED,
                                      STATUS_OK)
from repro.robustness.journal import JOURNAL_NAME, Journal
from repro.robustness.supervisor import (BatchSupervisor, JobSpec,
                                         SupervisorOptions, run_batch)
from repro.robustness.worker import run_attempt

PROGRAM = """
proc main() {
    var v = input();
    if (v > 0) { if (v > 0) { print 1; } }
    return 0;
}
"""


def _options(**overrides):
    base = dict(isolation="inprocess", backoff_base_s=0.0, timeout_s=10.0,
                seed=3)
    base.update(overrides)
    return SupervisorOptions(**base)


def _spec(job):
    return {"job": job, "tier": 0, "budget": 1000,
            "duplication_limit": 100, "diff_check": True, "diff_seed": 1,
            "conditional_deadline_s": None, "timeout_s": None,
            "memory_mb": None, "inject": None, "faults": [],
            "strict": False, "trace": False}


def test_worker_reports_a_missing_file_as_a_load_error():
    payload = run_attempt(_spec("/nope/missing.mc"))
    assert payload["ok"] is False
    assert payload["kind"] == "load-error"
    assert payload["context"]["source"] == "/nope/missing.mc"
    assert payload["context"]["errno"] == 2
    assert payload["context"]["path"] == "/nope/missing.mc"


def test_worker_reports_an_unknown_suite_as_a_load_error():
    payload = run_attempt(_spec("suite:nope@2"))
    assert payload["kind"] == "load-error"
    assert payload["context"]["source"] == "suite:nope@2"
    assert "cannot load job" in payload["message"]


def test_batch_fails_a_missing_input_definitely_with_context(tmp_path):
    report = run_batch(["/nope/missing.mc", "suite:li_like@1"],
                       str(tmp_path / "run"), options=_options())
    assert report.all_definite
    failed, healthy = report.outcomes
    assert (failed.status, healthy.status) == (STATUS_FAILED, STATUS_OK)
    # One attempt, no ladder descent: the error is input-side.
    assert len(failed.attempts) == 1
    assert failed.tier == 0
    assert "non-retryable" in failed.reason
    assert failed.context["errno"] == 2
    assert failed.context["path"] == "/nope/missing.mc"
    # The context survives the journal round trip.
    recovered = Journal.recover(str(tmp_path / "run")).completed
    assert recovered[0].context["errno"] == 2
    assert recovered[0].attempts[0].context["path"] == "/nope/missing.mc"


def test_batch_fails_an_unknown_suite_without_retries(tmp_path):
    report = run_batch(["suite:nope@2"], str(tmp_path / "run"),
                       options=_options())
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_FAILED
    assert len(outcome.attempts) == 1
    assert outcome.context["source"] == "suite:nope@2"


def test_input_deleted_between_drain_and_resume(tmp_path, monkeypatch):
    # The satellite scenario: a batch is drained, someone deletes an
    # input file, --resume must finish with a definite FAILED for that
    # job (structured context) instead of an escaping exception.
    doomed = tmp_path / "doomed.mc"
    doomed.write_text(PROGRAM)
    jobs = ["suite:li_like@1", str(doomed), "suite:go_like@1"]
    run_dir = str(tmp_path / "run")

    original = BatchSupervisor._classify_structured

    def classify_then_signal(self, state, payload):
        original(self, state, payload)
        self._drain_signum = signal.SIGTERM

    from repro.errors import SupervisorDrained
    with monkeypatch.context() as patched:
        patched.setattr(BatchSupervisor, "_classify_structured",
                        classify_then_signal)
        with pytest.raises(SupervisorDrained):
            run_batch(jobs, run_dir, options=_options())

    os.remove(doomed)
    report = BatchSupervisor([], run_dir, options=_options(),
                             resume=True).run()
    assert report.all_definite
    assert [o.status for o in report.outcomes] == [STATUS_OK, STATUS_FAILED,
                                                   STATUS_OK]
    deleted = report.outcomes[1]
    assert len(deleted.attempts) == 1
    assert deleted.context["errno"] == 2
    assert deleted.context["path"] == str(doomed)


def test_load_errors_are_contained_under_process_isolation(tmp_path):
    # Same contract when the attempt runs in a real worker subprocess.
    report = run_batch(["/nope/missing.mc"], str(tmp_path / "run"),
                       options=SupervisorOptions(timeout_s=20.0,
                                                 backoff_base_s=0.0,
                                                 seed=3))
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_FAILED
    assert len(outcome.attempts) == 1
    assert outcome.context["errno"] == 2


def test_empty_context_is_not_serialized(tmp_path):
    # The determinism guard: journals written before ``context`` existed
    # must stay byte-identical, so an empty context never appears.
    assert "context" not in Attempt(tier=0, tier_name="full",
                                    result="ok").to_json()
    assert "context" in Attempt(tier=0, tier_name="full", result="error",
                                context={"errno": 2}).to_json()
    outcome = JobOutcome(job="a", status=STATUS_OK, tier=0,
                         tier_name="full")
    assert "context" not in outcome.to_json()
    # And a clean batch's journal bytes contain no context key at all.
    program = tmp_path / "clean.mc"
    program.write_text(PROGRAM)
    run_batch([str(program)], str(tmp_path / "run"), options=_options())
    raw = open(os.path.join(str(tmp_path / "run"), JOURNAL_NAME),
               "rb").read()
    assert b'"context"' not in raw
    assert json.loads(raw.splitlines()[1])["outcome"]["status"] == "OK"
