"""The batch supervisor: ladder, breaker, journal, resume, determinism.

Most tests use the in-process backend (same ladder/breaker/journal code
paths, no forking); chaos injection (hang/crash) is process-level by
nature, so those few tests pay for real subprocesses with small
programs and short timeouts.
"""

import os

import pytest

from repro.errors import SupervisorError
from repro.robustness.degrade import STATUS_DEGRADED, STATUS_FAILED, STATUS_OK
from repro.robustness.journal import Journal
from repro.robustness.supervisor import (BatchSupervisor, JobSpec,
                                         REPORT_NAME, SupervisorOptions,
                                         _JobState, job_class_of, run_batch)

PROGRAM = """
proc classify(v) {
    if (v <= 0) { return 0; }
    return v;
}
proc main() {
    var r = classify(input());
    if (r == 0) { print 0; } else { print r; }
    return 0;
}
"""

SPLIT_FAULT = {"site": "transform:split", "hit": 1, "action": "raise"}


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def _options(**overrides):
    base = dict(isolation="inprocess", backoff_base_s=0.0, timeout_s=10.0,
                seed=3)
    base.update(overrides)
    return SupervisorOptions(**base)


def _read(run_dir, name):
    with open(os.path.join(str(run_dir), name), "rb") as handle:
        return handle.read()


def test_job_class_strips_trailing_digits():
    assert job_class_of("gen3.mc") == "gen"
    assert job_class_of("gen17.mc") == "gen"
    assert job_class_of("/some/dir/crashy_2.mc") == "crashy"
    assert job_class_of("plain") == "plain"
    assert job_class_of("123.mc") == "123"  # all-digit stems keep the stem


def test_empty_batch_is_rejected(tmp_path):
    with pytest.raises(SupervisorError, match="no jobs"):
        BatchSupervisor([], str(tmp_path))


def test_clean_batch_all_ok(program_file, tmp_path):
    run_dir = tmp_path / "run"
    report = run_batch([program_file, "suite:li_like@1"], str(run_dir),
                       options=_options())
    assert [o.status for o in report.outcomes] == [STATUS_OK, STATUS_OK]
    assert report.all_definite
    assert report.total_retries == 0
    assert report.outcomes[0].counts["optimized"] >= 1
    assert report.outcomes[0].counts["nodes_after"] > 0
    # Journal and report landed on disk.
    assert len(Journal.recover(str(run_dir)).completed) == 2
    assert b"statuses: OK=2" in _read(run_dir, REPORT_NAME)


def test_parse_error_fails_fast_without_descending(tmp_path):
    bad = tmp_path / "bad.mc"
    bad.write_text("proc main() { print 1 }")  # missing ';'
    report = run_batch([str(bad)], str(tmp_path / "run"), options=_options())
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_FAILED
    assert "non-retryable" in outcome.reason
    assert len(outcome.attempts) == 1  # the ladder was skipped
    assert outcome.attempts[0].tier == 0


def test_missing_file_fails_fast(tmp_path):
    report = run_batch([str(tmp_path / "ghost.mc")], str(tmp_path / "run"),
                       options=_options())
    assert report.outcomes[0].status == STATUS_FAILED
    assert "non-retryable" in report.outcomes[0].reason


def test_strict_fault_descends_exactly_one_tier_per_attempt(
        program_file, tmp_path):
    spec = JobSpec(program_file, faults=(SPLIT_FAULT,), strict=True)
    report = BatchSupervisor([spec], str(tmp_path / "run"),
                             options=_options()).run()
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_DEGRADED
    # One tier per attempt, starting from the top, until a tier the
    # fault no longer reaches (here: intra never splits this program,
    # so transform:split is never hit at tier 2).
    tiers = [a.tier for a in outcome.attempts]
    assert tiers == list(range(len(tiers)))
    assert outcome.tier == tiers[-1] >= 1
    assert outcome.attempts[-1].result == "ok"
    assert all(a.result == "error" for a in outcome.attempts[:-1])
    assert "FaultInjected" in outcome.reason


def test_inprocess_backend_rejects_chaos_injection(program_file, tmp_path):
    spec = JobSpec(program_file, inject={"kind": "hang", "tiers": [0]})
    with pytest.raises(SupervisorError, match="process isolation"):
        BatchSupervisor([spec], str(tmp_path / "run"),
                        options=_options()).run()


def test_backoff_is_seeded_bounded_and_order_independent(
        program_file, tmp_path):
    supervisor = BatchSupervisor([JobSpec(program_file)],
                                 str(tmp_path / "run"),
                                 options=_options(seed=11,
                                                  backoff_base_s=0.01))
    state = _JobState(index=0, spec=supervisor.jobs[0])
    state.attempts = [object()]  # one failure so far
    first = supervisor._backoff_delay(state)
    assert first == supervisor._backoff_delay(state)  # pure function
    assert 0.0 <= first <= supervisor.options.backoff_max_s
    state.attempts.append(object())
    second = supervisor._backoff_delay(state)
    assert second != first  # attempt number feeds the derivation
    other_seed = BatchSupervisor([JobSpec(program_file)],
                                 str(tmp_path / "run2"),
                                 options=_options(seed=12, backoff_jitter=1.0,
                                                  backoff_base_s=0.5))
    state_two = _JobState(index=0, spec=other_seed.jobs[0])
    state_two.attempts = [object()]
    assert other_seed._backoff_delay(state_two) != first


def test_identical_seeded_runs_are_byte_identical(program_file, tmp_path):
    # The determinism regression: journal AND report bytes must match
    # across two fresh runs with the same jobs and seed, including a
    # multi-attempt (faulted) job with recorded backoffs.
    def batch(run_dir):
        specs = [JobSpec(program_file),
                 JobSpec(program_file, name="faulted.mc",
                         faults=(SPLIT_FAULT,), strict=True)]
        BatchSupervisor(specs, str(run_dir),
                        options=_options(seed=5, backoff_base_s=0.01)).run()

    batch(tmp_path / "one")
    batch(tmp_path / "two")
    assert (_read(tmp_path / "one", "journal.jsonl")
            == _read(tmp_path / "two", "journal.jsonl"))
    assert (_read(tmp_path / "one", REPORT_NAME)
            == _read(tmp_path / "two", REPORT_NAME))


def _truncated_resume_dirs(program_file, tmp_path, mutilate):
    """Run a 3-job batch clean (dir 'full'), then replay it in dir
    'cut' with the journal mutilated mid-run, resume, and return both
    directories for byte comparison."""
    specs = lambda: [JobSpec(program_file),  # noqa: E731
                     JobSpec(program_file, name="faulted.mc",
                             faults=(SPLIT_FAULT,), strict=True),
                     JobSpec(program_file, name="third.mc")]
    options = lambda: _options(seed=9)  # noqa: E731
    full, cut = tmp_path / "full", tmp_path / "cut"
    BatchSupervisor(specs(), str(full), options=options()).run()
    BatchSupervisor(specs(), str(cut), options=options()).run()
    mutilate(os.path.join(str(cut), "journal.jsonl"))
    os.remove(os.path.join(str(cut), REPORT_NAME))
    report = BatchSupervisor(specs(), str(cut), options=options(),
                             resume=True).run()
    return full, cut, report


def test_resume_after_interruption_is_byte_identical(program_file, tmp_path):
    def keep_meta_and_first_job(path):
        lines = open(path, "rb").read().splitlines(keepends=True)
        open(path, "wb").write(b"".join(lines[:2]))

    full, cut, report = _truncated_resume_dirs(
        program_file, tmp_path, keep_meta_and_first_job)
    assert report.resumed_jobs == 1
    assert _read(full, "journal.jsonl") == _read(cut, "journal.jsonl")
    assert _read(full, REPORT_NAME) == _read(cut, REPORT_NAME)


def test_resume_with_torn_tail_is_byte_identical(program_file, tmp_path):
    def tear_the_tail(path):
        lines = open(path, "rb").read().splitlines(keepends=True)
        open(path, "wb").write(b"".join(lines[:2]) + lines[2][:17])

    full, cut, report = _truncated_resume_dirs(
        program_file, tmp_path, tear_the_tail)
    assert report.resumed_jobs == 1
    assert _read(full, "journal.jsonl") == _read(cut, "journal.jsonl")
    assert _read(full, REPORT_NAME) == _read(cut, REPORT_NAME)


def test_resume_adopts_journal_seed_and_options(program_file, tmp_path):
    run_dir = tmp_path / "run"
    BatchSupervisor([JobSpec(program_file)], str(run_dir),
                    options=_options(seed=42, timeout_s=7.5)).run()
    resumed = BatchSupervisor([JobSpec(program_file)], str(run_dir),
                              options=_options(seed=0, timeout_s=60.0),
                              resume=True)
    report = resumed.run()
    assert resumed.options.seed == 42          # journal meta wins
    assert resumed.options.timeout_s == 7.5
    assert report.resumed_jobs == 1            # nothing re-ran


def test_resume_refuses_a_different_job_list(program_file, tmp_path):
    run_dir = tmp_path / "run"
    BatchSupervisor([JobSpec(program_file)], str(run_dir),
                    options=_options()).run()
    with pytest.raises(SupervisorError, match="jobs mismatch"):
        BatchSupervisor([JobSpec(program_file), JobSpec(program_file)],
                        str(run_dir), options=_options(), resume=True).run()


def test_resume_without_explicit_jobs_reloads_them(program_file, tmp_path):
    run_dir = tmp_path / "run"
    BatchSupervisor([JobSpec(program_file)], str(run_dir),
                    options=_options()).run()
    report = BatchSupervisor([], str(run_dir), options=_options(),
                             resume=True).run()
    assert len(report.outcomes) == 1
    assert report.outcomes[0].status == STATUS_OK


# -- real subprocess isolation (chaos needs a process to kill) ------------


def test_hang_is_killed_and_job_degrades_one_tier(program_file, tmp_path):
    spec = JobSpec(program_file, inject={"kind": "hang", "tiers": [0]})
    report = BatchSupervisor(
        [spec], str(tmp_path / "run"),
        options=SupervisorOptions(timeout_s=1.0, backoff_base_s=0.0,
                                  seed=1)).run()
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_DEGRADED
    assert outcome.tier == 1  # exactly one tier beyond necessity: none
    assert outcome.attempts[0].result == "timeout"
    assert outcome.kills == 1
    assert report.total_kills == 1


def test_crash_is_contained_and_job_degrades_one_tier(
        program_file, tmp_path):
    spec = JobSpec(program_file, inject={"kind": "crash", "tiers": [0]})
    report = BatchSupervisor(
        [spec], str(tmp_path / "run"),
        options=SupervisorOptions(timeout_s=10.0, backoff_base_s=0.0,
                                  seed=1)).run()
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_DEGRADED
    assert outcome.tier == 1
    assert outcome.attempts[0].result == "crash"
    assert "134" in outcome.attempts[0].detail


def test_circuit_breaker_stops_a_failing_class(tmp_path):
    # Two jobs of one class, both crashing at every tier: after the
    # threshold of consecutive hard failures the class is cut off and
    # both jobs finalize FAILED instead of burning the whole ladder.
    sources = []
    for index in (1, 2):
        path = tmp_path / f"crashy{index}.mc"
        path.write_text(PROGRAM)
        sources.append(str(path))
    specs = [JobSpec(source,
                     inject={"kind": "crash", "tiers": [0, 1, 2, 3]})
             for source in sources]
    report = BatchSupervisor(
        [*specs], str(tmp_path / "run"),
        options=SupervisorOptions(timeout_s=10.0, backoff_base_s=0.0,
                                  breaker_threshold=2, seed=1)).run()
    assert report.breaker_opened == ["crashy"]
    assert [o.status for o in report.outcomes] == [STATUS_FAILED,
                                                   STATUS_FAILED]
    assert any("circuit breaker open" in o.reason for o in report.outcomes)
    hard_attempts = sum(
        1 for o in report.outcomes for a in o.attempts if a.result == "crash")
    assert hard_attempts <= 2 + 1  # threshold plus one in-flight attempt


def test_parallel_workers_keep_journal_bytes_identical(
        program_file, tmp_path):
    sources = [program_file] * 3 + ["suite:compress_like@1"]
    options = lambda jobs: SupervisorOptions(  # noqa: E731
        jobs=jobs, timeout_s=30.0, backoff_base_s=0.0, seed=6)
    run_batch(sources, str(tmp_path / "serial"), options=options(1))
    run_batch(sources, str(tmp_path / "wide"), options=options(3))
    assert (_read(tmp_path / "serial", "journal.jsonl")
            == _read(tmp_path / "wide", "journal.jsonl"))
    assert (_read(tmp_path / "serial", REPORT_NAME)
            == _read(tmp_path / "wide", REPORT_NAME))
