"""Graceful drain of ``icbe batch``: SIGTERM/SIGINT checkpointing.

A signal mid-batch must not lose admitted work: completed jobs stay
journaled, interrupted ones stay pending, ``--resume`` finishes the
batch, and the finished journal + report are byte-identical to an
uninterrupted run.  The in-process tests drive the drain flag
deterministically; one subprocess test delivers a real SIGTERM to the
CLI and watches the conventional exit codes (143/130).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import SupervisorDrained
from repro.robustness.journal import JOURNAL_NAME
from repro.robustness.supervisor import (BatchSupervisor, JobSpec,
                                         REPORT_NAME, SupervisorOptions,
                                         run_batch)

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

PROGRAM = """
proc main() {
    var v = input();
    if (v > 0) { if (v > 0) { print 1; } }
    return 0;
}
"""


def _options(**overrides):
    base = dict(isolation="inprocess", backoff_base_s=0.0, timeout_s=10.0,
                seed=3)
    base.update(overrides)
    return SupervisorOptions(**base)


def _read(run_dir, name):
    with open(os.path.join(str(run_dir), name), "rb") as handle:
        return handle.read()


def _drain_after_first_job(monkeypatch, signum):
    """Flip the supervisor's drain flag right after its first job
    classifies — the deterministic stand-in for a mid-batch signal."""
    original = BatchSupervisor._classify_structured

    def classify_then_signal(self, state, payload):
        original(self, state, payload)
        self._drain_signum = signum

    monkeypatch.setattr(BatchSupervisor, "_classify_structured",
                        classify_then_signal)


@pytest.mark.parametrize("signum,code", [(signal.SIGTERM, 143),
                                         (signal.SIGINT, 130)])
def test_drain_checkpoints_and_resume_is_byte_identical(
        tmp_path, monkeypatch, signum, code):
    jobs = ["suite:li_like@1", "suite:go_like@1", "suite:compress_like@1"]
    run_dir = str(tmp_path / "run")
    reference_dir = str(tmp_path / "reference")

    with monkeypatch.context() as patched:
        _drain_after_first_job(patched, signum)
        with pytest.raises(SupervisorDrained) as caught:
            run_batch(jobs, run_dir, options=_options())
    drained = caught.value
    assert drained.exit_code == code
    assert (drained.context["completed"], drained.context["total"]) == (1, 3)
    assert "finish with --resume" in str(drained)
    # The journal holds exactly the completed prefix, nothing torn.
    lines = [json.loads(line)
             for line in _read(run_dir, JOURNAL_NAME).splitlines()]
    assert [r["type"] for r in lines] == ["meta", "job"]
    # No report: the batch is not done and must not pretend to be.
    assert not os.path.exists(os.path.join(run_dir, REPORT_NAME))

    resumed = BatchSupervisor([], run_dir, options=_options(),
                              resume=True).run()
    assert resumed.resumed_jobs == 1
    assert [o.status for o in resumed.outcomes] == ["OK", "OK", "OK"]

    run_batch(jobs, reference_dir, options=_options())
    assert (_read(run_dir, JOURNAL_NAME)
            == _read(reference_dir, JOURNAL_NAME))
    assert _read(run_dir, REPORT_NAME) == _read(reference_dir, REPORT_NAME)


def test_drain_before_any_job_completes_nothing(tmp_path, monkeypatch):
    run_dir = str(tmp_path / "run")
    supervisor = BatchSupervisor([JobSpec(source="suite:li_like@1")],
                                 run_dir, options=_options())
    supervisor._drain_signum = signal.SIGTERM  # signal beat the first job
    with pytest.raises(SupervisorDrained) as caught:
        supervisor.run()
    assert (caught.value.context["completed"],
            caught.value.context["total"]) == (0, 1)
    lines = _read(run_dir, JOURNAL_NAME).splitlines()
    assert len(lines) == 1  # meta only


def test_signal_handler_only_sets_the_flag(tmp_path):
    supervisor = BatchSupervisor([JobSpec(source="suite:li_like@1")],
                                 str(tmp_path / "run"), options=_options())
    assert supervisor._drain_signum == 0
    supervisor._on_signal(signal.SIGTERM, None)
    assert supervisor._drain_signum == signal.SIGTERM


def test_handlers_are_installed_and_restored():
    before_term = signal.getsignal(signal.SIGTERM)
    before_int = signal.getsignal(signal.SIGINT)
    supervisor = BatchSupervisor.__new__(BatchSupervisor)
    supervisor._drain_signum = 0
    previous = supervisor._install_drain_handlers()
    try:
        assert signal.getsignal(signal.SIGTERM) == supervisor._on_signal
        assert signal.getsignal(signal.SIGINT) == supervisor._on_signal
    finally:
        BatchSupervisor._restore_drain_handlers(previous)
    assert signal.getsignal(signal.SIGTERM) == before_term
    assert signal.getsignal(signal.SIGINT) == before_int


def test_cli_sigterm_drains_with_exit_143_and_resume_finishes(tmp_path):
    program = tmp_path / "prog.mc"
    program.write_text(PROGRAM)
    run_dir = str(tmp_path / "run")
    jobs = [str(program), "suite:li_like@1", "suite:go_like@1",
            "suite:compress_like@1", "suite:m88ksim_like@1"]
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "batch", "--run-dir", run_dir,
         "--seed", "3", "--timeout", "30", *jobs],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    journal = os.path.join(run_dir, JOURNAL_NAME)
    try:
        # Wait until at least one job has been journaled, then SIGTERM.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                pytest.fail(f"batch finished before the signal landed: "
                            f"{proc.stderr.read().decode()}")
            try:
                with open(journal, "rb") as handle:
                    if sum(1 for _ in handle) >= 2:  # meta + >=1 result
                        break
            except OSError:
                pass
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 143, stderr.decode()
    assert b"batch drained on SIGTERM" in stderr
    assert b"finish with --resume" in stderr

    finish = subprocess.run(
        [sys.executable, "-m", "repro.cli", "batch", "--resume", run_dir],
        env=env, capture_output=True, timeout=300)
    assert finish.returncode == 0, finish.stderr.decode()
    lines = [json.loads(line)
             for line in _read(run_dir, JOURNAL_NAME).splitlines()]
    results = [r for r in lines if r["type"] == "job"]
    assert len(results) == len(jobs)
    assert all(r["outcome"]["status"] == "OK" for r in results)
