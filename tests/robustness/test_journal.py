"""The write-ahead journal: canonical bytes, recovery, torn tails."""

import json
import os

import pytest

from repro.errors import SupervisorError
from repro.robustness.degrade import Attempt, JobOutcome
from repro.robustness.journal import (Journal, canonical_json, load_outcomes)


def _outcome(job="a.mc", status="OK", tier=0):
    return JobOutcome(job=job, status=status, tier=tier, tier_name="full",
                      attempts=(Attempt(0, "full", "ok"),),
                      counts={"optimized": 1})


def _meta(seed=7):
    return {"seed": seed, "jobs": ["a.mc", "b.mc"],
            "options": {"timeout_s": 5.0}}


def _write(run_dir, meta=None, outcomes=()):
    journal = Journal(str(run_dir))
    journal.open_fresh(meta or _meta())
    for index, outcome in enumerate(outcomes):
        journal.append_job(index, outcome)
    journal.close()
    return journal.path


def test_canonical_json_is_stable_and_compact():
    record = {"b": 2, "a": {"y": 1, "x": [3, 1]}}
    text = canonical_json(record)
    assert text == '{"a":{"x":[3,1],"y":1},"b":2}'
    assert canonical_json(json.loads(text)) == text


def test_journal_roundtrip(tmp_path):
    outcomes = [_outcome("a.mc"), _outcome("b.mc", status="DEGRADED", tier=1)]
    _write(tmp_path, outcomes=outcomes)
    recovered = Journal.recover(str(tmp_path))
    assert recovered.meta["seed"] == 7
    assert not recovered.torn_tail
    assert recovered.completed[0] == outcomes[0]
    assert recovered.completed[1] == outcomes[1]
    assert load_outcomes(str(tmp_path)) == outcomes


def test_job_records_contain_no_timing_fields(tmp_path):
    # The byte-identical resume contract forbids anything wall-clock
    # flavoured in job records (meta legitimately holds the timeout_s
    # *option*, which is configuration, not measurement).
    path = _write(tmp_path, outcomes=[_outcome()])
    job_lines = [line for line in open(path, encoding="utf-8")
                 if '"type":"job"' in line]
    assert job_lines
    for forbidden in ("time", "stamp", "pid", "duration", "wall", "elapsed"):
        for line in job_lines:
            assert forbidden not in line


def test_torn_tail_is_tolerated_and_truncated(tmp_path):
    path = _write(tmp_path, outcomes=[_outcome()])
    intact = os.path.getsize(path)
    with open(path, "ab") as handle:
        handle.write(b'{"type":"job","ind')  # SIGKILL mid-write
    recovered = Journal.recover(str(tmp_path))
    assert recovered.torn_tail
    assert recovered.valid_bytes == intact
    assert list(recovered.completed) == [0]

    journal = Journal(str(tmp_path))
    journal.open_resume(recovered)
    journal.append_job(1, _outcome("b.mc"))
    journal.close()
    again = Journal.recover(str(tmp_path))
    assert not again.torn_tail
    assert sorted(again.completed) == [0, 1]


def test_mid_file_corruption_is_an_error(tmp_path):
    path = _write(tmp_path, outcomes=[_outcome()])
    lines = open(path, "rb").read().splitlines(keepends=True)
    with open(path, "wb") as handle:
        handle.write(lines[0] + b"{garbage\n" + lines[1])
    with pytest.raises(SupervisorError, match="corrupt journal record"):
        Journal.recover(str(tmp_path))


def test_missing_journal_is_an_error(tmp_path):
    with pytest.raises(SupervisorError, match="no journal to resume"):
        Journal.recover(str(tmp_path))


def test_missing_meta_is_an_error(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(canonical_json(
        {"type": "job", "index": 0, "outcome": _outcome().to_json()}) + "\n")
    with pytest.raises(SupervisorError, match="no meta record"):
        Journal.recover(str(tmp_path))


def test_check_meta_refuses_foreign_batches(tmp_path):
    _write(tmp_path)
    recovered = Journal.recover(str(tmp_path))
    Journal.check_meta(recovered, {"version": 1, **_meta()})  # same: fine
    with pytest.raises(SupervisorError, match="seed mismatch"):
        Journal.check_meta(recovered, {"version": 1, **_meta(seed=8)})
    other_jobs = {"version": 1, **_meta()}
    other_jobs["jobs"] = ["a.mc"]
    with pytest.raises(SupervisorError, match="jobs mismatch"):
        Journal.check_meta(recovered, other_jobs)


def test_identical_writes_are_byte_identical(tmp_path):
    outcomes = [_outcome("a.mc"), _outcome("b.mc")]
    path_one = _write(tmp_path / "one", outcomes=outcomes)
    path_two = _write(tmp_path / "two", outcomes=outcomes)
    assert open(path_one, "rb").read() == open(path_two, "rb").read()
