"""Snapshot/restore: the mechanism under every transaction."""

from tests.helpers import FGETC_LIKE, build

from repro.ir import dump_icfg, verify_icfg
from repro.ir.icfg import EdgeKind
from repro.robustness import ICFGSnapshot


def test_restore_roundtrips_structure():
    icfg = build(FGETC_LIKE)
    reference = dump_icfg(icfg)
    snapshot = ICFGSnapshot.take(icfg)
    restored = snapshot.restore()
    verify_icfg(restored)
    assert dump_icfg(restored) == reference
    assert snapshot.node_count == icfg.node_count()


def test_taking_a_snapshot_leaves_the_graph_unharmed():
    icfg = build(FGETC_LIKE)
    reference = dump_icfg(icfg)
    ICFGSnapshot.take(icfg)
    assert dump_icfg(icfg) == reference
    verify_icfg(icfg)


def test_restore_in_place_heals_mutation():
    icfg = build(FGETC_LIKE)
    reference = dump_icfg(icfg)
    snapshot = ICFGSnapshot.take(icfg)
    # Corrupt the live graph thoroughly.
    some_node = next(iter(sorted(icfg.nodes)))
    for edge in list(icfg.succ_edges(some_node)):
        icfg.remove_edge(edge)
    icfg.procs[icfg.main].exits.clear()
    same_object = snapshot.restore(into=icfg)
    assert same_object is icfg
    assert dump_icfg(icfg) == reference
    verify_icfg(icfg)


def test_snapshot_survives_multiple_restores():
    icfg = build(FGETC_LIKE)
    snapshot = ICFGSnapshot.take(icfg)
    first = snapshot.restore()
    # Mutating the first restoration must not leak into the second.
    victim = sorted(first.nodes)[0]
    for edge in list(first.succ_edges(victim)):
        first.remove_edge(edge)
    second = snapshot.restore()
    verify_icfg(second)
    assert dump_icfg(second) == dump_icfg(icfg)


def test_restored_id_allocator_does_not_recycle_ids():
    icfg = build(FGETC_LIKE)
    snapshot = ICFGSnapshot.take(icfg)
    restored = snapshot.restore()
    fresh = restored.new_id()
    assert fresh not in restored.nodes


def test_restored_graph_is_independent_of_original():
    icfg = build(FGETC_LIKE)
    snapshot = ICFGSnapshot.take(icfg)
    restored = snapshot.restore()
    entry = icfg.main_entry()
    succ = icfg.only_succ(entry, EdgeKind.NORMAL)
    icfg.remove_edge(icfg.succ_edges(entry)[0])
    assert restored.only_succ(entry, EdgeKind.NORMAL) == succ
