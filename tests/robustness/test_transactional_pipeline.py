"""The transactional optimizer end to end: rollback, guards, diffcheck.

Includes the headline acceptance scenario: a fault injected in the
middle of optimizing a multi-conditional program rolls back only the
affected conditional; the optimizer completes, the final graph passes
``verify_icfg`` *and* the differential trace check, and the failure is
recorded in the ``BranchRecord``s.
"""

import pytest

from tests.helpers import FGETC_LIKE, build

from repro.analysis import AnalysisConfig
from repro.errors import (BudgetExceeded, DifferentialMismatch,
                          FaultInjected)
from repro.ir import dump_icfg, verify_icfg
from repro.robustness import FaultPlan, FaultSpec, differential_check
from repro.transform import BranchOutcome, ICBEOptimizer, OptimizerOptions


def make_optimizer(**kwargs):
    kwargs.setdefault("config", AnalysisConfig(budget=10_000))
    return ICBEOptimizer(OptimizerOptions(**kwargs))


def test_acceptance_mid_run_fault_rolls_back_only_one_conditional():
    icfg = build(FGETC_LIKE)
    baseline = make_optimizer(diff_check=True).optimize(icfg)
    assert baseline.optimized_count >= 2  # genuinely multi-conditional

    # Crash the splitter in the middle of the run: the second
    # conditional whose restructuring reaches the splitting phase dies.
    plan = FaultPlan.raising("transform:split", hit=2)
    report = make_optimizer(diff_check=True, fault_plan=plan).optimize(icfg)

    assert plan.fired, "the fault must actually fire mid-run"
    # Exactly one conditional failed, and it was rolled back.
    failed = [r for r in report.records
              if r.outcome is BranchOutcome.FAILED]
    assert len(failed) == 1
    assert "FaultInjected" in failed[0].failure
    assert report.failed_count == 1
    # The optimizer completed and still optimized other conditionals.
    assert report.optimized_count >= 1
    # The final graph is structurally valid and semantically faithful.
    verify_icfg(report.optimized)
    assert differential_check(icfg, report.optimized).ok
    # The failure produced a diagnostics bundle with the ICFG dump.
    bundles = [b for b in report.diagnostics if b.phase == "restructure"]
    assert bundles and "FaultInjected" in bundles[0].failure
    assert "proc" in bundles[0].icfg_dump


def test_input_graph_is_never_touched_even_under_faults():
    icfg = build(FGETC_LIKE)
    reference = dump_icfg(icfg)
    plan = FaultPlan([
        FaultSpec("pipeline:branch-start", hit=1, action="drop-edge"),
        FaultSpec("analysis:pair", hit=30, action="raise"),
    ])
    make_optimizer(diff_check=True, fault_plan=plan).optimize(icfg)
    assert dump_icfg(icfg) == reference
    verify_icfg(icfg)


def test_corruption_of_live_graph_is_healed_by_rollback():
    icfg = build(FGETC_LIKE)
    plan = FaultPlan.corrupting("pipeline:branch-start", hit=2,
                                action="drop-edge")
    report = make_optimizer(diff_check=True, fault_plan=plan).optimize(icfg)
    assert plan.fired
    verify_icfg(report.optimized)
    assert differential_check(icfg, report.optimized).ok
    # Later conditionals were not poisoned by the earlier corruption.
    assert report.optimized_count >= 1


def test_semantic_corruption_is_rolled_back_by_differential_check():
    icfg = build(FGETC_LIKE)
    # Skew a print constant after splitting but before the structural
    # verifier: the graph stays verifier-clean, so only the differential
    # check can catch it.
    plan = FaultPlan.corrupting("transform:verify", hit=1,
                                action="skew-print")
    report = make_optimizer(diff_check=True, fault_plan=plan).optimize(icfg)
    assert report.rolled_back_count == 1
    rolled = [r for r in report.records
              if r.outcome is BranchOutcome.ROLLED_BACK]
    assert "mismatch" in rolled[0].failure
    verify_icfg(report.optimized)
    assert differential_check(icfg, report.optimized).ok
    bundle = [b for b in report.diagnostics if b.phase == "diff-check"]
    assert bundle and bundle[0].diff is not None


def test_deadline_guard_fails_conditionals_not_the_run():
    icfg = build(FGETC_LIKE)
    report = make_optimizer(deadline_s=0.0).optimize(icfg)
    # With a zero deadline every analyzable conditional blows its budget
    # at the first checkpoint, but the run itself completes.
    assert report.optimized_count == 0
    assert report.failed_count >= 1
    assert all("BudgetExceeded" in r.failure for r in report.records
               if r.outcome is BranchOutcome.FAILED)
    verify_icfg(report.optimized)


def test_growth_guard_bounds_one_transaction():
    icfg = build(FGETC_LIKE)
    report = make_optimizer(guard_growth_factor=1.01).optimize(icfg)
    verify_icfg(report.optimized)
    # The guard may fail some conditionals, never the run.
    assert len(report.records) >= icfg.conditional_node_count()
    for record in report.records:
        if record.outcome is BranchOutcome.FAILED:
            assert "BudgetExceeded" in record.failure


def test_strict_mode_reraises_injected_faults():
    icfg = build(FGETC_LIKE)
    plan = FaultPlan.raising("transform:split", hit=1)
    with pytest.raises(FaultInjected):
        make_optimizer(strict=True, fault_plan=plan).optimize(icfg)


def test_strict_mode_reraises_budget_exhaustion():
    icfg = build(FGETC_LIKE)
    with pytest.raises(BudgetExceeded):
        make_optimizer(strict=True, deadline_s=0.0).optimize(icfg)


def test_strict_mode_raises_differential_mismatch():
    icfg = build(FGETC_LIKE)
    plan = FaultPlan.corrupting("transform:verify", hit=1,
                                action="skew-print")
    with pytest.raises(DifferentialMismatch):
        make_optimizer(strict=True, diff_check=True,
                       fault_plan=plan).optimize(icfg)


def test_simplify_fault_rolls_back_compaction_only():
    icfg = build(FGETC_LIKE)
    plan = FaultPlan.corrupting("pipeline:simplify", hit=1,
                                action="clear-exits")
    report = make_optimizer(diff_check=True, fault_plan=plan).optimize(icfg)
    # Optimization itself survived; only the nop compaction was undone.
    assert report.optimized_count >= 2
    verify_icfg(report.optimized)
    assert differential_check(icfg, report.optimized).ok
    assert any(b.phase == "simplify" for b in report.diagnostics)


def test_diagnostics_bundles_spill_to_disk(tmp_path):
    icfg = build(FGETC_LIKE)
    plan = FaultPlan.raising("transform:split", hit=1)
    report = make_optimizer(fault_plan=plan,
                            diagnostics_dir=str(tmp_path)).optimize(icfg)
    assert report.failed_count == 1
    written = list(tmp_path.glob("icbe-diag-*.md"))
    assert len(written) == 1
    text = written[0].read_text()
    assert "FaultInjected" in text and "Traceback" in text
    assert "proc" in text  # the ICFG dump made it into the bundle


def test_fault_free_run_matches_legacy_behaviour():
    icfg = build(FGETC_LIKE)
    robust = make_optimizer(diff_check=True).optimize(icfg)
    legacy = make_optimizer().optimize(icfg)
    assert robust.optimized_count == legacy.optimized_count
    assert robust.failed_count == legacy.failed_count == 0
    assert robust.rolled_back_count == 0
    assert dump_icfg(robust.optimized) == dump_icfg(legacy.optimized)


def test_outcome_counts_cover_every_record():
    icfg = build(FGETC_LIKE)
    plan = FaultPlan.raising("transform:split", hit=2)
    report = make_optimizer(fault_plan=plan).optimize(icfg)
    counts = report.outcome_counts()
    assert sum(counts.values()) == len(report.records)
    assert counts.get(BranchOutcome.FAILED.value) == 1
