"""Crash-at-every-fault-point: recovery proofs for every durable surface.

The sweep arms one :class:`~repro.utils.durafs.FsFaultSpec` at a time —
errno, torn write, crash-before-rename, lying fsync — at every I/O site
a surface exposes, lets the surface die there, then recovers the way a
restarted process would and asserts the durability contract:

- journals (batch and serve) replay **byte-identically** to an
  uninterrupted run;
- the store and the result cache read as *miss, never wrong*;
- a journal write failure is a *definite* operator error (structured
  errno/path context, CLI exit 2) that never poisons ``--resume``.
"""

import errno
import os

import pytest

from repro.analysis import AnalysisConfig
from repro.analysis.store import SummaryStore
from repro.cli import main
from repro.errors import ServeError, SupervisorError
from repro.robustness.degrade import Attempt, JobOutcome
from repro.robustness.journal import JOURNAL_NAME, Journal
from repro.robustness.journal import SITE as BATCH_SITE
from repro.serve.cache import ResultCache
from repro.serve.journal import SITE as SERVE_SITE
from repro.serve.journal import ServeJournal
from repro.utils import durafs
from repro.utils.durafs import (Filesystem, FsFaultPlan, FsFaultSpec,
                                SimulatedCrash)

CONFIG = AnalysisConfig(budget=100_000)

#: Anything a dying surface may legitimately raise: the wrapped
#: operator error, a raw OSError from a constructor, or the simulated
#: SIGKILL itself (which no handler is allowed to swallow).
DEATHS = (SupervisorError, ServeError, OSError, SimulatedCrash)


def _spec_id(spec):
    return f"{spec.op}-{spec.action}-hit{spec.hit}" + (
        f"-keep{spec.keep_bytes}" if spec.action == "torn" else "")


def _fault_matrix(site, appends):
    """Every (op, action, position) fault a journal surface can hit.

    ``appends`` is how many records the uninterrupted run writes: each
    append is one write and one fsync, so hits 1..appends place the
    fault under every record, from the meta header to the final entry.
    """
    specs = [FsFaultSpec(site, "open", hit=1, action="errno")]
    for hit in range(1, appends + 1):
        specs.append(FsFaultSpec(site, "write", hit=hit, action="errno"))
        specs.append(FsFaultSpec(site, "fsync", hit=hit, action="errno",
                                 err=errno.EIO))
        specs.append(FsFaultSpec(site, "write", hit=hit, action="crash"))
        specs.append(FsFaultSpec(site, "fsync", hit=hit, action="crash"))
        specs.append(FsFaultSpec(site, "write", hit=hit, action="torn",
                                 keep_bytes=(hit * 7) % 23))
    return specs


# ---------------------------------------------------------------------------
# The batch journal.
# ---------------------------------------------------------------------------

BATCH_META = {"seed": 7, "jobs": ["a.mc", "b.mc", "c.mc"],
              "options": {"timeout_s": 5.0}}


def _outcome(job):
    return JobOutcome(job=job, status="OK", tier=0, tier_name="full",
                      attempts=(Attempt(0, "full", "ok"),),
                      counts={"optimized": 1})


BATCH_OUTCOMES = [_outcome("a.mc"), _outcome("b.mc"), _outcome("c.mc")]


def _write_batch(run_dir, fs=None):
    journal = Journal(run_dir, fs=fs)
    journal.open_fresh(BATCH_META)
    for index, outcome in enumerate(BATCH_OUTCOMES):
        journal.append_job(index, outcome)
    journal.close()


def _resume_batch(run_dir):
    """What a restarted supervisor does: recover, truncate, replay."""
    journal = Journal(run_dir)
    try:
        recovered = Journal.recover(run_dir)
    except SupervisorError:
        recovered = None        # no file, or not even a durable meta
    if recovered is None:
        journal.open_fresh(BATCH_META)
        completed = {}
    else:
        journal.open_resume(recovered)
        completed = recovered.completed
        for index, outcome in completed.items():
            assert outcome == BATCH_OUTCOMES[index]   # never a wrong record
    for index, outcome in enumerate(BATCH_OUTCOMES):
        if index not in completed:
            journal.append_job(index, outcome)
    journal.close()


BATCH_FAULTS = _fault_matrix(BATCH_SITE, appends=4) + [
    # An fsync that lies about record k, then a crash on the next write:
    # record k evaporates *after* append() reported success.
    FsFaultPlan([FsFaultSpec(BATCH_SITE, "fsync", hit=k,
                             action="lying-fsync"),
                 FsFaultSpec(BATCH_SITE, "write", hit=k + 1,
                             action="crash")])
    for k in (1, 2, 3)]


@pytest.mark.parametrize(
    "fault", BATCH_FAULTS,
    ids=[_spec_id(f) if isinstance(f, FsFaultSpec)
         else f"lying-fsync-hit{f.specs[0].hit}" for f in BATCH_FAULTS])
def test_batch_journal_replays_byte_identically(tmp_path, fault):
    reference = str(tmp_path / "reference")
    _write_batch(reference)
    reference_bytes = open(os.path.join(reference, JOURNAL_NAME),
                           "rb").read()

    run_dir = str(tmp_path / "run")
    plan = fault if isinstance(fault, FsFaultPlan) else FsFaultPlan([fault])
    with pytest.raises(DEATHS):
        _write_batch(run_dir, fs=Filesystem(plan))
    assert plan.fired                             # the fault really fired

    _resume_batch(run_dir)                        # fresh process, good disk
    resumed = open(os.path.join(run_dir, JOURNAL_NAME), "rb").read()
    assert resumed == reference_bytes


# ---------------------------------------------------------------------------
# The serve journal.
# ---------------------------------------------------------------------------

SERVE_META = {"seed": 0, "fingerprint": {"budget": 1000}}


def _serve_submit(jid):
    return {"id": jid, "job": f"{jid}.mc", "name": jid, "job_class": "t",
            "key": f"key-{jid}", "priority": 5, "deadline_s": 300.0,
            "inject": None}


#: The canonical serve run: two admissions, one completion.
SERVE_OPS = [("submit", _serve_submit("j-1")),
             ("submit", _serve_submit("j-2")),
             ("done", "j-1", {"status": "OK", "tier": 0})]


def _write_serve(run_dir, fs=None):
    journal = ServeJournal(run_dir, fs=fs)
    journal.open_fresh(SERVE_META)
    for op in SERVE_OPS:
        if op[0] == "submit":
            journal.append_submit(op[1])
        else:
            journal.append_done(op[1], op[2])
    journal.close()


def _resume_serve(run_dir):
    journal = ServeJournal(run_dir)
    try:
        recovered = ServeJournal.recover(run_dir)
    except ServeError:
        recovered = None
    if recovered is None:
        journal.open_fresh(SERVE_META)
        submitted, done = set(), {}
    else:
        journal.open_recovered(recovered, SERVE_META)
        submitted = {r["id"] for r in recovered.submits}
        done = recovered.done
    for op in SERVE_OPS:
        if op[0] == "submit" and op[1]["id"] not in submitted:
            journal.append_submit(op[1])
        elif op[0] == "done" and op[1] not in done:
            journal.append_done(op[1], op[2])
    journal.close()


SERVE_FAULTS = _fault_matrix(SERVE_SITE, appends=4)


@pytest.mark.parametrize("fault", SERVE_FAULTS, ids=_spec_id)
def test_serve_journal_replays_byte_identically(tmp_path, fault):
    reference = str(tmp_path / "reference")
    _write_serve(reference)
    reference_bytes = open(ServeJournal(reference).path, "rb").read()

    run_dir = str(tmp_path / "run")
    plan = FsFaultPlan([fault])
    with pytest.raises(DEATHS):
        _write_serve(run_dir, fs=Filesystem(plan))
    assert plan.fired

    _resume_serve(run_dir)
    assert open(ServeJournal(run_dir).path, "rb").read() == reference_bytes


# ---------------------------------------------------------------------------
# The summary store and the result cache: miss, never wrong.
# ---------------------------------------------------------------------------

STORE_FAULTS = [
    FsFaultSpec("store.entry", op, hit=1, action=action)
    for op in ("open", "write", "fsync", "rename")
    for action in ("errno", "crash")
] + [FsFaultSpec("store.entry", "write", hit=1, action="torn",
                 keep_bytes=9),
     FsFaultSpec("store.entry", "fsync", hit=1, action="lying-fsync")]


@pytest.mark.parametrize("fault", STORE_FAULTS, ids=_spec_id)
def test_store_save_faults_read_as_miss_never_wrong(tmp_path, fault):
    root = str(tmp_path / "store")
    payload = [{"kind": "true"}]
    sick = SummaryStore(root, CONFIG, fs=Filesystem(FsFaultPlan([fault])))
    try:
        sick.save("somekey", payload)
    except SimulatedCrash:
        pass                     # the process died; debris may remain
    # A later process on a healthy disk: the entry either round-trips
    # exactly or reads as a miss — never garbage, never an exception.
    fresh = SummaryStore(root, CONFIG)
    assert fresh.load("somekey") in (None, payload)
    assert fresh.stats.rejects == 0
    # And the surface still works: a clean save round-trips.
    fresh.save("somekey", payload)
    assert fresh.load("somekey") == payload


CACHE_FAULTS = [
    FsFaultSpec("serve.cache", op, hit=1, action=action)
    for op in ("open", "write", "fsync", "rename")
    for action in ("errno", "crash")
] + [FsFaultSpec("serve.cache", "write", hit=1, action="torn",
                 keep_bytes=13)]


@pytest.mark.parametrize("fault", CACHE_FAULTS, ids=_spec_id)
def test_cache_put_faults_read_as_miss_never_wrong(tmp_path, fault):
    run_dir = str(tmp_path)
    result = {"status": "OK", "tier": 0}
    sick = ResultCache(run_dir, fingerprint={"budget": 7},
                       fs=Filesystem(FsFaultPlan([fault])))
    try:
        sick.put("deadbeef", result)
    except SimulatedCrash:
        pass
    fresh = ResultCache(run_dir, fingerprint={"budget": 7})
    got = fresh.get("deadbeef")
    assert got is None or got == result
    fresh.put("deadbeef", result)
    assert ResultCache(run_dir,
                       fingerprint={"budget": 7}).get("deadbeef") == result


# ---------------------------------------------------------------------------
# End to end through the CLI: a journal ENOSPC is a definite operator
# error (exit 2, structured context) and --resume finishes cleanly.
# ---------------------------------------------------------------------------

PROGRAM = """
proc classify(v) {
    if (v <= 0) { return 0; }
    return v;
}
proc main() {
    var r = classify(input());
    if (r == 0) { print 0; } else { print r; }
    return 0;
}
"""


def test_batch_journal_enospc_exits_2_and_resumes_clean(tmp_path, capsys,
                                                        monkeypatch):
    prog = tmp_path / "prog.mc"
    prog.write_text(PROGRAM)
    flags = ["--seed", "3", "--backoff", "0"]

    clean_dir = str(tmp_path / "clean")
    assert main(["batch", str(prog), "--run-dir", clean_dir] + flags) == 0
    capsys.readouterr()

    # The disk fills when the first job outcome is journaled (append 1
    # is the meta header).  Gating the module-default Filesystem faults
    # the real CLI path with no constructor plumbing.
    run_dir = str(tmp_path / "run")
    monkeypatch.setattr(durafs, "DEFAULT_FS", Filesystem(
        FsFaultPlan.erroring(BATCH_SITE, op="write", hit=2)))
    code = main(["batch", str(prog), "--run-dir", run_dir] + flags)
    err = capsys.readouterr().err
    assert code == 2                              # definite, not DEGRADED
    assert "icbe: error:" in err
    assert "journal write failed" in err
    assert "icbe: context:" in err                # structured errno/path
    assert "errno" in err and JOURNAL_NAME in err

    # The disk recovers; --resume finishes the batch and the journal is
    # byte-identical to the uninterrupted run's.
    monkeypatch.setattr(durafs, "DEFAULT_FS", Filesystem())
    capsys.readouterr()
    assert main(["batch", str(prog), "--resume", run_dir]) == 0
    resumed = open(os.path.join(run_dir, JOURNAL_NAME), "rb").read()
    reference = open(os.path.join(clean_dir, JOURNAL_NAME), "rb").read()
    assert resumed == reference
