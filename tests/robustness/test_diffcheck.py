"""Differential validation of observable traces."""

import random

import pytest

from tests.helpers import FGETC_LIKE, build

from repro.errors import DifferentialMismatch
from repro.interp import Workload
from repro.robustness import (corrupt_icfg, differential_check,
                              require_equivalent, seeded_workloads)


def test_identical_graphs_pass():
    icfg = build(FGETC_LIKE)
    report = differential_check(icfg, icfg.clone())
    assert report.ok
    assert report.runs == 4  # empty + 3 seeded
    assert "ok" in report.describe()


def test_semantic_divergence_is_caught():
    icfg = build(FGETC_LIKE)
    skewed = icfg.clone()
    corrupt_icfg(skewed, "skew-print", random.Random(3))
    report = differential_check(icfg, skewed)
    assert not report.ok
    assert report.mismatches
    mismatch = report.mismatches[0]
    assert mismatch.original != mismatch.optimized
    assert "mismatch" in report.describe()


def test_require_equivalent_raises_on_divergence():
    icfg = build(FGETC_LIKE)
    skewed = icfg.clone()
    corrupt_icfg(skewed, "skew-print", random.Random(3))
    require_equivalent(icfg, icfg.clone())
    with pytest.raises(DifferentialMismatch):
        require_equivalent(icfg, skewed)


def test_caller_supplied_workloads_are_reusable():
    icfg = build(FGETC_LIKE)
    loads = [Workload([9, 9, 0], name="explicit")]
    first = differential_check(icfg, icfg.clone(), workloads=loads)
    second = differential_check(icfg, icfg.clone(), workloads=loads)
    assert first.ok and second.ok


def test_seeded_workloads_are_deterministic():
    a = seeded_workloads(seed=42, runs=2, length=8)
    b = seeded_workloads(seed=42, runs=2, length=8)
    assert [w.values for w in a] == [w.values for w in b]
    assert a[0].values == []  # the empty stream leads the battery
    assert len(a) == 3


def test_neither_graph_is_mutated():
    from repro.ir import dump_icfg
    icfg = build(FGETC_LIKE)
    other = icfg.clone()
    before_a, before_b = dump_icfg(icfg), dump_icfg(other)
    differential_check(icfg, other)
    assert dump_icfg(icfg) == before_a
    assert dump_icfg(other) == before_b
