"""Fault injection: deterministic, precisely targeted, observable."""

import random

import pytest

from tests.helpers import FGETC_LIKE, build

from repro.errors import FaultInjected, VerificationError
from repro.ir import dump_icfg, verify_icfg
from repro.robustness import (CORRUPTION_ACTIONS, FaultPlan, FaultSpec,
                              checkpoint, corrupt_icfg, robustness_context)


def test_raise_fires_on_exact_hit_count():
    plan = FaultPlan.raising("site", hit=3, message="boom")
    with robustness_context(plan=plan):
        checkpoint("site")
        checkpoint("site")
        with pytest.raises(FaultInjected, match="boom"):
            checkpoint("site")
    assert plan.hits["site"] == 3
    assert len(plan.fired) == 1
    assert plan.fired[0].hit == 3


def test_other_sites_do_not_consume_hits():
    plan = FaultPlan.raising("target", hit=1)
    with robustness_context(plan=plan):
        checkpoint("unrelated")
        checkpoint("also-unrelated")
        with pytest.raises(FaultInjected):
            checkpoint("target")


def test_custom_exception_type():
    plan = FaultPlan([FaultSpec("site", exception=MemoryError)])
    with robustness_context(plan=plan):
        with pytest.raises(MemoryError):
            checkpoint("site")


def test_reset_rearms_the_plan():
    plan = FaultPlan.raising("site", hit=1)
    with robustness_context(plan=plan):
        with pytest.raises(FaultInjected):
            checkpoint("site")
        checkpoint("site")  # hit 2: spec does not fire again
        plan.reset()
        with pytest.raises(FaultInjected):
            checkpoint("site")


def test_structural_corruptions_break_the_verifier():
    for action in ("drop-edge", "stray-edge", "drop-node", "clear-exits"):
        icfg = build(FGETC_LIKE)
        detail = corrupt_icfg(icfg, action, random.Random(7))
        assert not detail.startswith("noop"), (action, detail)
        with pytest.raises(VerificationError):
            verify_icfg(icfg)


def test_skew_print_is_verifier_clean_but_semantically_wrong():
    from repro.interp import Workload, run_icfg
    icfg = build(FGETC_LIKE)
    pristine = build(FGETC_LIKE)
    detail = corrupt_icfg(icfg, "skew-print", random.Random(7))
    assert detail.startswith("skewed")
    verify_icfg(icfg)  # structure untouched
    workload = Workload([5, 3, 0])
    assert (run_icfg(icfg, workload.fresh()).observable
            != run_icfg(pristine, workload.fresh()).observable)


def test_corruption_is_deterministic_per_seed():
    first, second = build(FGETC_LIKE), build(FGETC_LIKE)
    for action in CORRUPTION_ACTIONS:
        a = corrupt_icfg(first, action, random.Random(13))
        b = corrupt_icfg(second, action, random.Random(13))
        assert a == b
    assert dump_icfg(first) == dump_icfg(second)


def test_corruption_fault_skipped_without_a_graph():
    plan = FaultPlan.corrupting("site", action="drop-edge")
    with robustness_context(plan=plan):
        checkpoint("site")  # no icfg at this site: nothing to corrupt
    assert plan.fired == []


def test_unknown_action_is_rejected():
    with pytest.raises(ValueError, match="unknown corruption"):
        corrupt_icfg(build(FGETC_LIKE), "set-on-fire", random.Random(0))
