"""Resource guards: cooperative deadlines and node budgets."""

import pytest

from tests.helpers import FGETC_LIKE, build

from repro.errors import BudgetExceeded, ReproError
from repro.robustness import (DeadlineGuard, ResourceGuard, checkpoint,
                              robustness_context)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_unarmed_guard_never_trips():
    guard = ResourceGuard().start()
    for _ in range(1000):
        guard.check()
    assert guard.checks == 1000


def test_deadline_trips_after_time_passes():
    clock = FakeClock()
    guard = ResourceGuard(deadline_s=5.0, clock=clock).start()
    guard.check()
    clock.now += 10.0
    with pytest.raises(BudgetExceeded, match="deadline"):
        guard.check()


def test_node_budget_trips_on_large_graph():
    icfg = build(FGETC_LIKE)
    guard = ResourceGuard(max_nodes=icfg.node_count() - 1).start()
    guard.check()  # no graph handed in: nothing to measure
    with pytest.raises(BudgetExceeded, match="node budget"):
        guard.check(icfg)


def test_budget_exceeded_is_a_repro_error():
    assert issubclass(BudgetExceeded, ReproError)


def test_guard_enforced_through_checkpoints():
    clock = FakeClock()
    guard = ResourceGuard(deadline_s=1.0, clock=clock)
    with guard, robustness_context(guard=guard):
        checkpoint("anywhere")
        clock.now += 2.0
        with pytest.raises(BudgetExceeded):
            checkpoint("anywhere")
    # Outside the context the same checkpoint is inert.
    clock.now += 100.0
    checkpoint("anywhere")


def test_deadline_guard_basic_lifecycle():
    clock = FakeClock()
    guard = DeadlineGuard(5.0, clock=clock)
    assert not guard.armed
    assert guard.remaining() == 5.0  # unarmed: full budget
    guard.start()
    clock.now += 2.0
    assert guard.elapsed() == 2.0
    assert guard.remaining() == 3.0
    assert not guard.expired()
    clock.now += 4.0
    assert guard.expired()
    assert guard.remaining() == 0.0  # clamped, never negative


def test_deadline_guard_unlimited_never_expires():
    clock = FakeClock()
    guard = DeadlineGuard(None, clock=clock).start()
    clock.now += 1e9
    assert not guard.expired()
    assert guard.remaining() is None


def test_deadline_guard_survives_a_backwards_clock():
    # A clock step behind the origin must re-arm, not credit negative
    # elapsed time (which would extend the budget indefinitely).
    clock = FakeClock()
    guard = DeadlineGuard(5.0, clock=clock).start()
    clock.now -= 50.0
    assert guard.elapsed() == 0.0  # re-armed at the observed instant
    clock.now += 4.0
    assert not guard.expired()
    clock.now += 2.0
    assert guard.expired()  # and it still fires afterwards


def test_deadline_guard_wire_format_carries_budget_not_timestamps():
    # Monotonic clocks have per-process epochs, so the only sound wire
    # format is "remaining budget"; the receiver re-arms locally.
    parent_clock = FakeClock()
    guard = DeadlineGuard(10.0, clock=parent_clock).start()
    parent_clock.now += 4.0
    wire = guard.to_wire()
    assert wire == {"budget_s": 6.0}
    assert "origin" not in wire and "deadline" not in wire

    child_clock = FakeClock()
    child_clock.now = 123456.0  # wildly different epoch, as in a real fork
    child = DeadlineGuard.from_wire(wire, clock=child_clock)
    assert child.armed
    child_clock.now += 5.0
    assert not child.expired()
    child_clock.now += 2.0
    assert child.expired()


def test_resource_guard_deadline_delegates_to_deadline_guard():
    clock = FakeClock()
    guard = ResourceGuard(deadline_s=1.0, clock=clock).start()
    clock.now -= 10.0  # backwards step: inherited resilience
    guard.check()
    clock.now += 2.0
    with pytest.raises(BudgetExceeded) as excinfo:
        guard.check()
    # Structured context rides on the exception (see repro.errors).
    assert excinfo.value.context["deadline_s"] == 1.0
    assert excinfo.value.context["checkpoints"] == 2


def test_contexts_nest_and_restore():
    clock = FakeClock()
    outer = ResourceGuard(deadline_s=1.0, clock=clock)
    with outer, robustness_context(guard=outer):
        with robustness_context():
            clock.now += 5.0
            checkpoint("site")  # inner context has no guard: fine
        with pytest.raises(BudgetExceeded):
            checkpoint("site")  # outer guard is active again
