"""Resource guards: cooperative deadlines and node budgets."""

import pytest

from tests.helpers import FGETC_LIKE, build

from repro.errors import BudgetExceeded, ReproError
from repro.robustness import ResourceGuard, checkpoint, robustness_context


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_unarmed_guard_never_trips():
    guard = ResourceGuard().start()
    for _ in range(1000):
        guard.check()
    assert guard.checks == 1000


def test_deadline_trips_after_time_passes():
    clock = FakeClock()
    guard = ResourceGuard(deadline_s=5.0, clock=clock).start()
    guard.check()
    clock.now += 10.0
    with pytest.raises(BudgetExceeded, match="deadline"):
        guard.check()


def test_node_budget_trips_on_large_graph():
    icfg = build(FGETC_LIKE)
    guard = ResourceGuard(max_nodes=icfg.node_count() - 1).start()
    guard.check()  # no graph handed in: nothing to measure
    with pytest.raises(BudgetExceeded, match="node budget"):
        guard.check(icfg)


def test_budget_exceeded_is_a_repro_error():
    assert issubclass(BudgetExceeded, ReproError)


def test_guard_enforced_through_checkpoints():
    clock = FakeClock()
    guard = ResourceGuard(deadline_s=1.0, clock=clock)
    with guard, robustness_context(guard=guard):
        checkpoint("anywhere")
        clock.now += 2.0
        with pytest.raises(BudgetExceeded):
            checkpoint("anywhere")
    # Outside the context the same checkpoint is inert.
    clock.now += 100.0
    checkpoint("anywhere")


def test_contexts_nest_and_restore():
    clock = FakeClock()
    outer = ResourceGuard(deadline_s=1.0, clock=clock)
    with outer, robustness_context(guard=outer):
        with robustness_context():
            clock.now += 5.0
            checkpoint("site")  # inner context has no guard: fine
        with pytest.raises(BudgetExceeded):
            checkpoint("site")  # outer guard is active again
