"""The graceful-degradation ladder: tiers, options, outcomes."""

import pytest

from repro.robustness import degrade
from repro.robustness.degrade import (Attempt, JobOutcome, LADDER,
                                      STATUS_DEGRADED, STATUS_FAILED,
                                      STATUS_OK, tier, tier_names)


def test_ladder_shape():
    assert tier_names() == ("full", "no-cache", "intra", "parse-through")
    assert [t.index for t in LADDER] == [0, 1, 2, 3]
    assert degrade.FLOOR_TIER == 3


def test_ladder_weakens_monotonically():
    # Each descent removes capability, never adds it back.
    assert LADDER[0].analysis_cache and LADDER[0].interprocedural
    assert not LADDER[1].analysis_cache and LADDER[1].interprocedural
    assert not LADDER[2].analysis_cache and not LADDER[2].interprocedural
    assert not LADDER[3].optimize


def test_tier_lookup_clamps():
    assert tier(-5).name == "full"
    assert tier(99).name == "parse-through"
    assert tier(1).name == "no-cache"


def test_tier_options_reflect_the_tier():
    full = tier(0).options(budget=123, duplication_limit=7)
    assert full.analysis_cache and full.config.interprocedural
    assert full.config.budget == 123 and full.duplication_limit == 7
    assert (full.tier, full.tier_name) == (0, "full")

    no_cache = tier(1).options()
    assert not no_cache.analysis_cache and no_cache.config.interprocedural

    intra = tier(2).options()
    assert not intra.config.interprocedural
    assert (intra.tier, intra.tier_name) == (2, "intra")


def test_parse_through_tier_has_no_optimizer_options():
    with pytest.raises(ValueError, match="parse-through"):
        tier(3).options()


def test_tier_stamps_flow_into_the_optimization_report():
    from repro.ir import lower_program
    from repro.lang import parse_program
    from repro.transform import ICBEOptimizer

    icfg = lower_program(parse_program(
        "proc main() { if (input() > 0) { print 1; } return 0; }"))
    report = ICBEOptimizer(tier(2).options()).optimize(icfg)
    assert (report.tier, report.tier_name) == (2, "intra")


def test_attempt_json_roundtrip():
    attempt = Attempt(tier=1, tier_name="no-cache", result="timeout",
                      detail="no result within 2s", backoff_s=0.0625)
    assert Attempt.from_json(attempt.to_json()) == attempt


def test_outcome_json_roundtrip_and_properties():
    outcome = JobOutcome(
        job="gen3.mc", status=STATUS_DEGRADED, tier=1, tier_name="no-cache",
        reason="timeout: killed",
        attempts=(Attempt(0, "full", "timeout", "killed"),
                  Attempt(1, "no-cache", "ok")),
        counts={"optimized": 2})
    assert outcome.definite
    assert outcome.retries == 1
    assert outcome.kills == 1
    assert JobOutcome.from_json(outcome.to_json()) == outcome
    assert "DEGRADED" in outcome.describe()
    assert "1 retries" in outcome.describe()


def test_every_status_is_definite():
    for status in (STATUS_OK, STATUS_DEGRADED, STATUS_FAILED):
        assert JobOutcome(job="x", status=status, tier=0,
                          tier_name="full").definite
    assert not JobOutcome(job="x", status="PENDING", tier=0,
                          tier_name="full").definite


def test_hard_results_cover_every_process_death_mode():
    # The supervisor's _collect can only emit these four non-structured
    # verdicts; all must feed the breaker.
    assert {"timeout", "killed", "crash",
            "no-result"} <= degrade.HARD_RESULTS


def test_frontend_errors_are_non_retryable():
    for name in ("LexError", "ParseError", "SemanticError",
                 "FileNotFoundError"):
        assert name in degrade.NON_RETRYABLE_ERRORS
    # But optimizer-stage failures must stay retryable: a lower tier
    # can genuinely fix them.
    for name in ("BudgetExceeded", "TransformError", "VerificationError",
                 "MemoryError", "DifferentialMismatch"):
        assert name not in degrade.NON_RETRYABLE_ERRORS
