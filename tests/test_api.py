"""The README/module-docstring quickstart must actually work."""

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_quickstart_flow():
    source = """
        proc check(v) {
            if (v == 0) { return 1; }
            return 0;
        }
        proc main() {
            var v = input();
            if (v != 0) {
                var bad = check(v);
                if (bad == 1) { print -1; } else { print v; }
            }
            return 0;
        }
    """
    icfg = repro.lower_program(repro.parse_program(source))
    before = repro.run_icfg(icfg, repro.Workload([7]))

    optimizer = repro.ICBEOptimizer(repro.OptimizerOptions(
        config=repro.AnalysisConfig(interprocedural=True),
        duplication_limit=100))
    report = optimizer.optimize(icfg)
    after = repro.run_icfg(report.optimized, repro.Workload([7]))

    assert after.observable == before.observable
    assert (after.profile.executed_conditionals
            <= before.profile.executed_conditionals)
    assert report.optimized_count >= 1


def test_analyze_branch_is_exported():
    source = "proc main() { var x = 1; if (x == 1) { print 1; } }"
    icfg = repro.lower_program(repro.parse_program(source))
    branch = icfg.branch_nodes()[0]
    result = repro.analyze_branch(icfg, branch.id)
    assert result.fully_correlated
    assert repro.duplication_upper_bound(result) == 0
