"""Error reporting quality: positions, messages, and catchability."""

import pytest

from repro import errors
from repro.lang import parse_program
from repro.lang.lexer import tokenize


def test_lex_error_carries_position():
    with pytest.raises(errors.LexError) as excinfo:
        tokenize("ab\ncd $")
    assert excinfo.value.line == 2
    assert excinfo.value.column == 4
    assert "2:4" in str(excinfo.value)


def test_parse_error_carries_position():
    with pytest.raises(errors.ParseError) as excinfo:
        parse_program("proc main() {\n  print 1\n}")
    assert excinfo.value.line == 3  # the '}' where ';' was expected


def test_semantic_error_names_procedure_and_line():
    with pytest.raises(errors.SemanticError) as excinfo:
        parse_program("proc main() {\n  ghost = 1;\n}")
    message = str(excinfo.value)
    assert "main" in message and "ghost" in message


def test_all_frontend_errors_catchable_as_repro_error():
    bad_sources = [
        "proc main() { $ }",            # lex
        "proc main() { print 1 }",       # parse
        "proc main() { x = 1; }",        # sema
    ]
    for source in bad_sources:
        with pytest.raises(errors.ReproError):
            parse_program(source)


def test_analysis_error_for_non_branch_node():
    from repro.analysis import analyze_branch
    from repro.ir import lower_program
    icfg = lower_program(parse_program("proc main() { return 0; }"))
    with pytest.raises(errors.AnalysisError):
        analyze_branch(icfg, icfg.main_entry())


def test_repro_error_carries_structured_context():
    failure = errors.ReproError("boom", proc="main", tier=2, budget=1000)
    assert str(failure) == "boom"
    assert failure.context == {"proc": "main", "tier": 2, "budget": 1000}


def test_frontend_errors_expose_positions_as_context():
    with pytest.raises(errors.LexError) as lex:
        tokenize("ab\ncd $")
    assert lex.value.context == {"line": 2, "column": 4}
    with pytest.raises(errors.ParseError) as parse:
        parse_program("proc main() {\n  print 1\n}")
    assert parse.value.context["line"] == 3
    with pytest.raises(errors.SemanticError) as sema:
        parse_program("proc main() {\n  ghost = 1;\n}")
    assert sema.value.context["proc"] == "main"
    assert sema.value.context["line"] == 2


def test_error_context_sanitizes_for_json():
    failure = errors.ReproError("x", count=3, ratio=0.5, label="ok",
                                missing=None, graph=object())
    context = errors.error_context(failure)
    assert context["count"] == 3 and context["ratio"] == 0.5
    assert context["label"] == "ok" and context["missing"] is None
    assert context["graph"].startswith("<object object")  # repr fallback
    import json
    json.dumps(context)  # must always serialize


def test_error_context_of_foreign_exceptions_is_empty():
    assert errors.error_context(ValueError("nope")) == {}
    broken = errors.ReproError("x")
    broken.context = "not a dict"  # defensive: never propagate garbage
    assert errors.error_context(broken) == {}


def test_context_rides_into_diagnostics_bundles():
    from repro.robustness.report import capture_bundle
    bundle = capture_bundle(
        7, "restructure",
        exc=errors.TransformError("split failed", branch=7, nodes=41))
    assert bundle.error_context == {"branch": 7, "nodes": 41}
    rendered = bundle.render()
    assert "**Context:**" in rendered
    assert '"nodes": 41' in rendered


def test_interpreter_error_messages_name_the_fault():
    from repro.interp import Workload, run_icfg
    from repro.ir import lower_program
    icfg = lower_program(parse_program(
        "proc main() { store(0, 1); }"))
    result = run_icfg(icfg, Workload([]))
    assert result.status == "fault"
    assert "null pointer store" in result.fault_message
