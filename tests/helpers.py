"""Shared helpers for the ICBE reproduction test suite."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis import AnalysisConfig
from repro.interp import ExecutionResult, Workload, run_icfg
from repro.ir import ICFG, lower_program, verify_icfg
from repro.lang import parse_program
from repro.transform import ICBEOptimizer, OptimizerOptions


def build(source: str) -> ICFG:
    """Parse + lower + verify a MiniC source snippet."""
    icfg = lower_program(parse_program(source))
    verify_icfg(icfg)
    return icfg


def run(source_or_icfg, inputs: Optional[List[int]] = None
        ) -> ExecutionResult:
    """Execute a program (source text or ICFG) over a workload."""
    icfg = source_or_icfg if isinstance(source_or_icfg, ICFG) \
        else build(source_or_icfg)
    return run_icfg(icfg, Workload(inputs or []))


def optimize(icfg: ICFG, interprocedural: bool = True,
             duplication_limit: Optional[int] = None,
             budget: int = 10_000) -> ICFG:
    """Run the whole-program optimizer and return the optimized graph."""
    optimizer = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=interprocedural, budget=budget),
        duplication_limit=duplication_limit))
    report = optimizer.optimize(icfg)
    verify_icfg(report.optimized)
    return report.optimized


def check_equivalent(icfg_a: ICFG, icfg_b: ICFG,
                     workloads: List[List[int]]) -> Tuple[int, int]:
    """Assert observable equivalence on every workload; return the total
    executed-conditional counts (a, b)."""
    conds_a = conds_b = 0
    for inputs in workloads:
        result_a = run_icfg(icfg_a, Workload(inputs))
        result_b = run_icfg(icfg_b, Workload(inputs))
        assert result_a.observable == result_b.observable, (
            f"outputs differ on workload {inputs[:8]}...: "
            f"{result_a.observable[:2]} vs {result_b.observable[:2]}")
        conds_a += result_a.profile.executed_conditionals
        conds_b += result_b.profile.executed_conditionals
    return conds_a, conds_b


# A compact program exercising calls, returns, globals, loops, and the
# fgetc-style correlation — reused across many tests.
FGETC_LIKE = """
proc fgetc(stream) {
    var c;
    if (stream == 0) { return -1; }
    c = load(stream);
    if (c == 0) {
        c = input();
        if (c == 0) { return -1; }
        store(stream, c);
    }
    store(stream, load(stream) - 1);
    return (unsigned) c;
}

proc main() {
    var f = alloc(1);
    store(f, 6);
    var ch = fgetc(f);
    while (ch != -1) {
        print ch;
        ch = fgetc(f);
    }
    return 0;
}
"""
