"""White-box tests of the splitting machinery."""

import re

from tests.helpers import build

from repro.analysis import AnalysisConfig
from repro.analysis.driver import analyze_branch
from repro.analysis.rollback import answers_at
from repro.ir import verify_icfg
from repro.ir.icfg import EdgeKind
from repro.ir.nodes import BranchNode, CallExitNode
from repro.transform.split import Splitter

CONFIG = AnalysisConfig(budget=100_000)


def prepared(source, fragment):
    icfg = build(source)
    branch = [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)
              and fragment in re.sub(r"\w+::", "", n.label())][0]
    working = icfg.clone()
    analysis = analyze_branch(working, branch.id, CONFIG)
    splitter = Splitter(working, analysis.engine, analysis.answers,
                        branch.id, analysis.initial_query)
    return icfg, working, analysis, splitter


MERGE = """
    proc main() {
        var c = input();
        var x = 0;
        if (c > 0) { x = 1; }
        print c;
        if (x == 1) { print 1; }
    }
"""


def test_clone_counts_match_answer_products():
    icfg, working, analysis, splitter = prepared(MERGE, "x == 1")
    outcome = splitter.split()
    for node_id, clone_set in outcome.clone_sets.items():
        expected = 1
        for query in analysis.engine.raised[node_id]:
            expected *= max(1, len(answers_at(analysis.answers, node_id,
                                              query)))
        assert len(clone_set.clones) == expected


def test_originals_deleted_after_split():
    icfg, working, analysis, splitter = prepared(MERGE, "x == 1")
    visited = [nid for nid in analysis.engine.raised
               if analysis.engine.raised[nid]]
    splitter.split()
    for node_id in visited:
        assert node_id not in working.nodes


def test_cloned_from_maps_every_copy():
    icfg, working, analysis, splitter = prepared(MERGE, "x == 1")
    outcome = splitter.split()
    for clone_set in outcome.clone_sets.values():
        for copy in clone_set.clones.values():
            assert outcome.cloned_from[copy.id] == clone_set.original.id


def test_branch_copies_carry_initial_query_answers():
    icfg, working, analysis, splitter = prepared(MERGE, "x == 1")
    outcome = splitter.split()
    kinds = sorted(answer.kind for _, answer in outcome.branch_copies)
    assert kinds == ["false", "true"]


def test_every_clone_has_single_answer_per_query():
    """The defining property of Fig. 8: after splitting, each copy
    hosts exactly one answer (here: each copy's wired predecessors all
    agree on its assignment)."""
    icfg, working, analysis, splitter = prepared(MERGE, "x == 1")
    outcome = splitter.split()
    # Structural sanity of the split graph before elimination: the
    # only nodes allowed two+ NORMAL in-edges are merge points whose
    # clones all share one assignment, which holds by construction.
    for clone_set in outcome.clone_sets.values():
        for assignment, copy in clone_set.clones.items():
            assert len(dict(assignment)) == len(
                analysis.engine.raised[clone_set.original.id])


CALL = """
    proc classify(v) {
        if (v <= 0) { return -1; }
        return (unsigned) v;
    }
    proc main() {
        var r = classify(input());
        if (r == -1) { print 0; }
    }
"""


def test_call_exits_rebuilt_per_call_and_exit_copy():
    icfg, working, analysis, splitter = prepared(CALL, "r == -1")
    outcome = splitter.split()
    original_call_exits = [n.id for n in icfg.iter_nodes()
                           if isinstance(n, CallExitNode)]
    assert set(outcome.call_exit_clones) == set(original_call_exits)
    copies = outcome.call_exit_clones[original_call_exits[0]]
    # classify's exit splits (TRUE/FALSE summary answers) -> one
    # call-site exit per exit copy for the single call copy set.
    assert len(copies) >= 2
    for copy in copies:
        locals_ = [e for e in working.pred_edges(copy.id)
                   if e.kind is EdgeKind.LOCAL]
        returns = [e for e in working.pred_edges(copy.id)
                   if e.kind is EdgeKind.RETURN]
        assert len(locals_) == 1 and len(returns) == 1


def test_exit_splitting_updates_return_maps():
    icfg, working, analysis, splitter = prepared(CALL, "r == -1")
    splitter.split()
    call = working.call_nodes()[0]
    assert len(call.return_map) >= 2
    for exit_id, call_exit_id in call.return_map.items():
        assert exit_id in working.procs["classify"].exits
        assert isinstance(working.nodes[call_exit_id], CallExitNode)


def test_split_graph_runs_after_elimination():
    from repro.transform.eliminate import eliminate_known_copies
    icfg, working, analysis, splitter = prepared(CALL, "r == -1")
    outcome = splitter.split()
    eliminated = eliminate_known_copies(working, outcome.branch_copies)
    assert eliminated == 2
    working.remove_unreachable()
    verify_icfg(working)
