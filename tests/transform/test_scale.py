"""Whole-pipeline behaviour on programs an order of magnitude larger
than the suite (the repro band notes Python analyses can be slow; the
demand-driven design keeps this fast)."""

import time

from repro.analysis import AnalysisConfig
from repro.benchgen import GeneratorOptions, generate_program
from repro.interp import Workload, run_icfg
from repro.ir import lower_program, verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions

LARGE = GeneratorOptions(procedures=20, statements_per_proc=14, max_depth=3)


def test_large_program_end_to_end():
    icfg = lower_program(generate_program(99, LARGE))
    verify_icfg(icfg)
    assert icfg.node_count() > 2000
    assert icfg.conditional_node_count() > 250

    started = time.perf_counter()
    report = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(budget=1000),
        duplication_limit=50)).optimize(icfg)
    elapsed = time.perf_counter() - started
    verify_icfg(report.optimized)
    # Generous wall-clock bound: demand-driven analysis + per-branch
    # restructuring of ~350 conditionals must stay interactive.
    assert elapsed < 60.0

    workload = Workload.random(80, seed=1)
    before = run_icfg(icfg, workload)
    after = run_icfg(report.optimized, workload)
    assert after.observable == before.observable
    assert (after.profile.executed_conditionals
            < before.profile.executed_conditionals)
    assert report.optimized_count > 20


def test_large_program_analysis_budget_is_respected():
    from repro.analysis import analyze_branch
    icfg = lower_program(generate_program(123, LARGE))
    config = AnalysisConfig(budget=200)
    for branch in icfg.branch_nodes()[:40]:
        result = analyze_branch(icfg, branch.id, config)
        assert result.stats.pairs_examined <= 200
