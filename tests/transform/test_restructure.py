"""Per-conditional restructuring scenarios with dynamic verification."""

import re

from tests.helpers import build, check_equivalent

from repro.analysis import AnalysisConfig
from repro.interp import Workload, run_icfg
from repro.ir import verify_icfg
from repro.ir.nodes import BranchNode
from repro.transform import BranchOutcome, restructure_branch

CONFIG = AnalysisConfig(budget=100000)


def find_branch(icfg, fragment, occurrence=0):
    matches = [n for n in icfg.iter_nodes() if isinstance(n, BranchNode)
               and fragment in re.sub(r"\w+::", "", n.label())]
    return matches[occurrence]


def apply(source, fragment, config=CONFIG, limit=None, workloads=None):
    """Restructure one branch; assert semantics preserved; return result."""
    icfg = build(source)
    branch = find_branch(icfg, fragment)
    result = restructure_branch(icfg, branch.id, config, limit)
    if result.applied:
        verify_icfg(result.new_icfg)
        check_equivalent(icfg, result.new_icfg,
                         workloads if workloads is not None
                         else [[], [1, 2, 3], [-1, 0, 5, 7]])
    return icfg, result


def test_trivially_true_branch_removed():
    icfg, result = apply("""
        proc main() {
            var x = 1;
            if (x == 1) { print 1; } else { print 2; }
        }
    """, "x == 1")
    assert result.applied
    assert result.eliminated_copies == 1
    assert result.new_icfg.conditional_node_count() == 0
    assert run_icfg(result.new_icfg, Workload([])).output == [1]


def test_no_correlation_leaves_graph_untouched():
    icfg, result = apply("""
        proc main() {
            var x = input();
            if (x == 1) { print 1; }
        }
    """, "x == 1")
    assert result.outcome is BranchOutcome.NO_CORRELATION
    assert result.new_icfg is None


def test_unanalyzable_branch_reported():
    icfg, result = apply("""
        proc main() {
            var x = input(); var y = input();
            if (x == y) { print 1; }
        }
    """, "x == y")
    assert result.outcome is BranchOutcome.NOT_ANALYZABLE


def test_duplication_limit_gates_restructuring():
    source = """
        proc main() {
            var c = input();
            var x = 0;
            if (c > 0) { x = 1; }
            print c; print c; print c;
            if (x == 1) { print 1; }
        }
    """
    icfg = build(source)
    branch = find_branch(icfg, "x == 1")
    rejected = restructure_branch(icfg, branch.id, CONFIG,
                                  duplication_limit=1)
    assert rejected.outcome is BranchOutcome.OVER_LIMIT
    assert rejected.duplication_bound > 1
    accepted = restructure_branch(icfg, branch.id, CONFIG,
                                  duplication_limit=100)
    assert accepted.applied


def test_partial_correlation_splits_merge():
    """The diamond-merge case: the test is bypassed on correlated paths
    and kept on the unknown one."""
    source = """
        proc main() {
            var c = input();
            var x = 0;
            if (c > 0) { x = 1; }
            print c;
            if (x == 1) { print 10; } else { print 20; }
        }
    """
    icfg, result = apply(source, "x == 1",
                         workloads=[[5], [0], [-3]])
    assert result.applied
    assert result.eliminated_copies == 2  # both TRUE and FALSE copies
    # Dynamically the second test disappears entirely.
    before = run_icfg(icfg, Workload([5])).profile.executed_conditionals
    after = run_icfg(result.new_icfg,
                     Workload([5])).profile.executed_conditionals
    assert after == before - 1


def test_loop_invariant_flag_splits_loop():
    """Fig. 6: correlation across loop iterations duplicates the loop."""
    source = """
        proc main() {
            var flag = input();
            var x = 0;
            if (flag > 0) { x = 1; }
            var i = 0;
            while (i < 5) {
                if (x == 1) { print 1; } else { print 0; }
                i = i + 1;
            }
        }
    """
    icfg, result = apply(source, "x == 1", workloads=[[1], [0], [9]])
    assert result.applied
    # The inner test executed 5 times before; afterwards never.
    before = run_icfg(icfg, Workload([1]))
    after = run_icfg(result.new_icfg, Workload([1]))
    inner_before = sum(
        count for node_id, count in before.profile.node_counts.items()
        if isinstance(icfg.nodes.get(node_id), BranchNode)
        and "x == 1" in icfg.nodes[node_id].label())
    assert inner_before == 5
    inner_after = sum(
        count for node_id, count in after.profile.node_counts.items()
        if isinstance(result.new_icfg.nodes.get(node_id), BranchNode)
        and "x == 1" in result.new_icfg.nodes[node_id].label())
    assert inner_after == 0


def test_exit_splitting_return_value_check():
    """The paper's fgetc/EOF case: the callee's exits are split so the
    caller's check disappears on classified paths."""
    source = """
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var i = 0;
            while (i < 4) {
                var r = classify(input());
                if (r == -1) { print 0; } else { print r; }
                i = i + 1;
            }
        }
    """
    icfg, result = apply(source, "r == -1",
                         workloads=[[1, -2, 3, -4], [0, 0, 0, 0]])
    assert result.applied
    # classify now has multiple exits.
    assert len(result.new_icfg.procs["classify"].exits) >= 2
    before = run_icfg(icfg, Workload([1, -2, 3, -4]))
    after = run_icfg(result.new_icfg, Workload([1, -2, 3, -4]))
    assert (after.profile.executed_conditionals
            == before.profile.executed_conditionals - 4)


def test_entry_splitting_parameter_guard():
    """The callee's own parameter check is eliminated for the guarded
    call path via entry splitting."""
    source = """
        proc worker(p) {
            if (p == 0) { return -2; }
            return p * 2;
        }
        proc main() {
            var v = input();
            if (v != 0) {
                var r = worker(v);
                print r;
            } else {
                var s = worker(0);
                print s;
            }
        }
    """
    icfg, result = apply(source, "p == 0", workloads=[[3], [0], [-7]])
    assert result.applied
    # worker now has multiple entries (one per correlated context).
    assert len(result.new_icfg.procs["worker"].entries) >= 2
    # Dynamically, worker's guard never executes again.
    for inputs in ([3], [0]):
        after = run_icfg(result.new_icfg, Workload(inputs))
        guard_runs = sum(
            count for node_id, count in after.profile.node_counts.items()
            if isinstance(result.new_icfg.nodes.get(node_id), BranchNode)
            and "p == 0" in result.new_icfg.nodes[node_id].label())
        assert guard_runs == 0


def test_global_flag_through_call():
    source = """
        global err = 0;
        proc may_fail(v) {
            if (v < 0) { err = 1; return 0; }
            err = 0;
            return v;
        }
        proc main() {
            var i = 0;
            while (i < 3) {
                var r = may_fail(input());
                if (err == 1) { print -1; } else { print r; }
                i = i + 1;
            }
        }
    """
    icfg, result = apply(source, "err == 1",
                         workloads=[[1, -1, 2], [-5, -5, -5]])
    assert result.applied
    before = run_icfg(icfg, Workload([1, -1, 2]))
    after = run_icfg(result.new_icfg, Workload([1, -1, 2]))
    assert (after.profile.executed_conditionals
            < before.profile.executed_conditionals)


def test_operations_never_increase_on_any_tested_path():
    """Paper §3.3 safety: restructuring never lengthens a path."""
    source = """
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var r = classify(input());
            if (r == -1) { print 0; } else { print r; }
        }
    """
    icfg = build(source)
    branch = find_branch(icfg, "r == -1")
    result = restructure_branch(icfg, branch.id, CONFIG)
    assert result.applied
    for inputs in ([5], [-5], [0], [100]):
        before = run_icfg(icfg, Workload(inputs))
        after = run_icfg(result.new_icfg, Workload(inputs))
        assert (after.profile.executed_operations
                <= before.profile.executed_operations)


def test_input_graph_is_never_mutated():
    source = """
        proc main() {
            var x = 1;
            if (x == 1) { print 1; }
        }
    """
    icfg = build(source)
    snapshot = set(icfg.nodes)
    branch = find_branch(icfg, "x == 1")
    restructure_branch(icfg, branch.id, CONFIG)
    assert set(icfg.nodes) == snapshot
    verify_icfg(icfg)


def test_intraprocedural_mode_still_transforms_local_cases():
    source = """
        proc main() {
            var x = input();
            if (x == 7) { print 1; }
            if (x == 7) { print 2; }
        }
    """
    icfg = build(source)
    second = find_branch(icfg, "x == 7", occurrence=1)
    result = restructure_branch(
        icfg, second.id, AnalysisConfig(interprocedural=False), None)
    assert result.applied
    check_equivalent(icfg, result.new_icfg, [[7], [1], [0]])
    # After splitting, the second test never executes.
    after = run_icfg(result.new_icfg, Workload([7]))
    assert after.profile.executed_conditionals == 1
