import pytest

from tests.helpers import FGETC_LIKE, build, check_equivalent

from repro.errors import TransformError
from repro.ir import verify_icfg
from repro.ir.nodes import CallNode
from repro.transform.inline import (inline_call, inline_exhaustively,
                                    _recursive_procs)


def calls_to(icfg, callee):
    return [n for n in icfg.call_nodes() if n.callee == callee]


def test_inline_simple_call_preserves_semantics():
    source = """
        proc double(x) { return x * 2; }
        proc main() {
            var a = input();
            var b = double(a + 1);
            print b;
            return 0;
        }
    """
    icfg = build(source)
    original = icfg.clone()
    inline_call(icfg, calls_to(icfg, "double")[0].id)
    verify_icfg(icfg)
    assert not calls_to(icfg, "double")
    check_equivalent(original, icfg, [[3], [-1], [0]])


def test_inline_call_with_branches_and_result():
    icfg = build(FGETC_LIKE)
    original = icfg.clone()
    target = calls_to(icfg, "fgetc")[0]
    inline_call(icfg, target.id)
    verify_icfg(icfg)
    check_equivalent(original, icfg, [[], [4, 0], [1, 2, 0]])


def test_inline_call_for_effect_without_result():
    source = """
        global g = 0;
        proc bump() { g = g + 1; return g; }
        proc main() { bump(); bump(); print g; return 0; }
    """
    icfg = build(source)
    original = icfg.clone()
    inline_call(icfg, calls_to(icfg, "bump")[0].id)
    verify_icfg(icfg)
    check_equivalent(original, icfg, [[]])


def test_inline_nested_calls_are_preserved():
    source = """
        proc inner(v) { return v + 1; }
        proc outer(v) { return inner(v) * 2; }
        proc main() { print outer(input()); return 0; }
    """
    icfg = build(source)
    original = icfg.clone()
    inline_call(icfg, calls_to(icfg, "outer")[0].id)
    verify_icfg(icfg)
    # outer is gone from main but the inlined body still calls inner.
    assert not calls_to(icfg, "outer")
    inner_calls = calls_to(icfg, "inner")
    assert any(c.proc == "main" for c in inner_calls)
    check_equivalent(original, icfg, [[5], [-3]])


def test_inline_locals_are_renamed_apart():
    source = """
        proc f(x) { var t = x * 10; return t; }
        proc main() {
            var t = 3;
            var r = f(t);
            print t; print r;
            return 0;
        }
    """
    icfg = build(source)
    original = icfg.clone()
    inline_call(icfg, calls_to(icfg, "f")[0].id)
    verify_icfg(icfg)
    # main's own t must not be clobbered by the inlined t.
    check_equivalent(original, icfg, [[]])


def test_refuses_direct_recursion():
    source = """
        proc loop(n) {
            if (n <= 0) { return 0; }
            return loop(n - 1);
        }
        proc main() { print loop(3); return 0; }
    """
    icfg = build(source)
    recursive_call = [c for c in icfg.call_nodes()
                      if c.proc == "loop"][0]
    with pytest.raises(TransformError, match="recursive"):
        inline_call(icfg, recursive_call.id)


def test_inline_non_call_node_rejected():
    icfg = build("proc main() { return 0; }")
    with pytest.raises(TransformError):
        inline_call(icfg, icfg.main_entry())


def test_recursive_proc_detection():
    source = """
        proc ping(n) { if (n > 0) { return pong(n - 1); } return 0; }
        proc pong(n) { if (n > 0) { return ping(n - 1); } return 0; }
        proc leaf(v) { return v; }
        proc main() { print ping(4); print leaf(1); return 0; }
    """
    recursive = _recursive_procs(build(source))
    assert recursive == {"ping", "pong"}


def test_exhaustive_inlining_flattens_nonrecursive_calls():
    icfg = build(FGETC_LIKE)
    original = icfg.clone()
    inlined = inline_exhaustively(icfg, node_budget=10_000)
    verify_icfg(icfg)
    assert inlined >= 2
    assert not icfg.call_nodes()  # fully flattened
    check_equivalent(original, icfg, [[], [3, 0], [9, 9, 0]])


def test_exhaustive_inlining_respects_budget():
    icfg = build(FGETC_LIKE)
    size = icfg.node_count()
    inline_exhaustively(icfg, node_budget=size)  # no headroom at all
    verify_icfg(icfg)


def test_exhaustive_inlining_keeps_recursive_calls():
    source = """
        proc fact(n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        proc helper(v) { return v + 1; }
        proc main() { print fact(helper(4)); return 0; }
    """
    icfg = build(source)
    original = icfg.clone()
    inline_exhaustively(icfg, node_budget=10_000)
    verify_icfg(icfg)
    assert calls_to(icfg, "fact")      # recursion survives
    assert not any(c.proc == "main" and c.callee == "helper"
                   for c in icfg.call_nodes())
    check_equivalent(original, icfg, [[]])


def test_inlining_then_intraprocedural_icbe_matches_paper_story():
    """Paper §5: inlining makes interprocedural correlation visible to
    intraprocedural elimination — at a code growth cost."""
    from repro.analysis import AnalysisConfig
    from repro.interp import Workload, run_icfg
    from repro.transform import ICBEOptimizer, OptimizerOptions

    icfg = build(FGETC_LIKE)
    workload = [5, 0]

    intra = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=False)))

    plain = intra.optimize(icfg)
    flattened = icfg.clone()
    inline_exhaustively(flattened, node_budget=10_000)
    inlined = intra.optimize(flattened)

    base = run_icfg(icfg, Workload(workload))
    after_plain = run_icfg(plain.optimized, Workload(workload))
    after_inlined = run_icfg(inlined.optimized, Workload(workload))
    assert after_plain.observable == base.observable
    assert after_inlined.observable == base.observable
    # Inlining exposed the cross-procedure correlation to the baseline.
    assert (after_inlined.profile.executed_conditionals
            < after_plain.profile.executed_conditionals)


def test_inlined_locals_rezeroed_on_each_execution():
    """Regression: a callee's locals start at zero on *every* call; the
    inlined body must re-zero them, or a second execution (here: loop
    iterations) sees values left over from the first."""
    source = """
        proc sticky(v) {
            var seen;                 // zero on every call
            if (v > 0) { seen = v; }
            return seen;
        }
        proc main() {
            var i = 0;
            while (i < 4) {
                print sticky(input());
                i = i + 1;
            }
        }
    """
    icfg = build(source)
    original = icfg.clone()
    target = calls_to(icfg, "sticky")[0]
    inline_call(icfg, target.id)
    verify_icfg(icfg)
    # 5 then -1: without re-zeroing, the -1 call would report stale 5.
    check_equivalent(original, icfg, [[5, -1, 3, -2]])
