from tests.helpers import FGETC_LIKE, build, check_equivalent

from repro.analysis import AnalysisConfig
from repro.interp import Workload, run_icfg
from repro.ir import verify_icfg
from repro.transform import (BranchOutcome, ICBEOptimizer, OptimizerOptions)


def make_optimizer(interprocedural=True, limit=None, budget=10000,
                   growth=None):
    return ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=interprocedural, budget=budget),
        duplication_limit=limit, max_growth_factor=growth))


def test_optimizes_fgetc_example(fgetc_icfg):
    report = make_optimizer().optimize(fgetc_icfg)
    verify_icfg(report.optimized)
    conds_before, conds_after = check_equivalent(
        fgetc_icfg, report.optimized, [[], [5, 0], [1, 1, 0]])
    assert conds_after < conds_before
    assert report.optimized_count >= 2


def test_every_branch_gets_exactly_one_record(fgetc_icfg):
    report = make_optimizer().optimize(fgetc_icfg)
    # Every conditional present at some point was considered once.
    branch_ids = [r.branch_id for r in report.records]
    assert len(branch_ids) == len(set(branch_ids))
    assert len(branch_ids) >= fgetc_icfg.conditional_node_count()


def test_counts_and_growth_accounted(fgetc_icfg):
    report = make_optimizer().optimize(fgetc_icfg)
    assert report.nodes_before == fgetc_icfg.node_count()
    assert report.nodes_after == report.optimized.node_count()
    assert report.node_growth == report.nodes_after - report.nodes_before
    assert report.conditionals_before == fgetc_icfg.conditional_node_count()
    assert report.elapsed_seconds >= 0
    assert report.total_pairs_examined() > 0


def test_input_graph_untouched(fgetc_icfg):
    snapshot = set(fgetc_icfg.nodes)
    make_optimizer().optimize(fgetc_icfg)
    assert set(fgetc_icfg.nodes) == snapshot
    verify_icfg(fgetc_icfg)


def test_zero_duplication_limit_blocks_costly_branches():
    source = """
        proc main() {
            var c = input();
            var x = 0;
            if (c > 0) { x = 1; }
            print c;
            if (x == 1) { print 1; }
        }
    """
    icfg = build(source)
    report = make_optimizer(limit=0).optimize(icfg)
    outcomes = {r.branch_id: r.outcome for r in report.records}
    assert BranchOutcome.OVER_LIMIT in outcomes.values()


def test_growth_cap_stops_optimization():
    report = make_optimizer(growth=1.0).optimize(build(FGETC_LIKE))
    # With the cap at 1.0x the optimizer may stop early but must still
    # return a verified graph.
    verify_icfg(report.optimized)


def test_intraprocedural_never_beats_interprocedural():
    icfg = build(FGETC_LIKE)
    inter = make_optimizer(interprocedural=True).optimize(icfg)
    intra = make_optimizer(interprocedural=False).optimize(icfg)
    workload = [[], [3, 0], [2, 2, 0]]
    _, inter_conds = check_equivalent(icfg, inter.optimized, workload)
    _, intra_conds = check_equivalent(icfg, intra.optimized, workload)
    assert inter_conds <= intra_conds


def test_idempotent_second_pass_changes_little():
    icfg = build(FGETC_LIKE)
    first = make_optimizer().optimize(icfg)
    second = make_optimizer().optimize(first.optimized)
    check_equivalent(icfg, second.optimized, [[], [4, 0]])
    first_conds = run_icfg(first.optimized,
                           Workload([4, 0])).profile.executed_conditionals
    second_conds = run_icfg(second.optimized,
                            Workload([4, 0])).profile.executed_conditionals
    assert second_conds <= first_conds


def test_records_capture_analysis_stats(fgetc_icfg):
    report = make_optimizer(budget=3).optimize(fgetc_icfg)
    assert any(r.budget_exhausted for r in report.records)
