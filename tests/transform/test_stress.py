"""Structured stress scenarios for the whole optimizer.

Each program is engineered to hit a specific hard case: deep call
chains, many returns, mutual recursion through optimized procedures,
multiple call sites sharing split callees, and optimization applied to
already-optimized graphs.
"""

from tests.helpers import build, check_equivalent

from repro.analysis import AnalysisConfig
from repro.ir import verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions


def optimize(icfg, interprocedural=True, limit=None):
    report = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(interprocedural=interprocedural,
                              budget=50_000),
        duplication_limit=limit)).optimize(icfg)
    verify_icfg(report.optimized)
    return report


def test_deep_call_chain():
    levels = 8
    parts = ["proc level0(v) { if (v <= 0) { return -1; } "
             "return (unsigned) v; }"]
    for depth in range(1, levels):
        parts.append(
            f"proc level{depth}(v) {{ return level{depth - 1}(v); }}")
    parts.append(f"""
        proc main() {{
            var i = 0;
            while (i < 5) {{
                var r = level{levels - 1}(input());
                if (r == -1) {{ print 0; }} else {{ print r; }}
                i = i + 1;
            }}
        }}
    """)
    icfg = build("\n".join(parts))
    report = optimize(icfg)
    check_equivalent(icfg, report.optimized,
                     [[1, -2, 3, -4, 5], [0, 0, 0, 0, 0]])
    assert report.optimized_count >= 1


def test_many_returns_in_one_procedure():
    source = """
        proc grade(score) {
            if (score < 0)  { return -1; }
            if (score < 10) { return 1; }
            if (score < 20) { return 2; }
            if (score < 30) { return 3; }
            return 4;
        }
        proc main() {
            var i = 0;
            while (i < 6) {
                var g = grade(input());
                if (g == -1) { print 0; } else { print g; }
                i = i + 1;
            }
        }
    """
    icfg = build(source)
    report = optimize(icfg)
    check_equivalent(
        icfg, report.optimized,
        [[5, 15, 25, 35, -5, 0], [-1, -1, -1, -1, -1, -1]])
    # grade's exits were split enough to carry the classification.
    assert len(report.optimized.procs["grade"].exits) >= 2


def test_shared_callee_with_conflicting_contexts():
    source = """
        proc check(v) {
            if (v == 0) { return 1; }
            return 0;
        }
        proc caller_a() {
            var r = check(0);
            if (r == 1) { print 10; }
            return r;
        }
        proc caller_b() {
            var r = check(7);
            if (r == 1) { print 20; }
            return r;
        }
        proc main() {
            var x = caller_a();
            var y = caller_b();
            print x + y;
        }
    """
    icfg = build(source)
    report = optimize(icfg)
    check_equivalent(icfg, report.optimized, [[]])
    # Both callers' re-checks are eliminable; check may be entered
    # through distinct entries per context.
    from repro.interp import Workload, run_icfg
    run = run_icfg(report.optimized, Workload([]))
    assert run.profile.executed_conditionals == 0


def test_recursion_adjacent_to_optimized_code():
    source = """
        proc depth(n) {
            if (n <= 0) { return 0; }
            return 1 + depth(n - 1);
        }
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            print depth(6);
            var r = classify(input());
            if (r == -1) { print 0; } else { print r; }
        }
    """
    icfg = build(source)
    report = optimize(icfg)
    check_equivalent(icfg, report.optimized, [[4], [-4], [0]])


def test_reoptimizing_an_optimized_graph_is_safe():
    source = """
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var r = classify(input());
            if (r == -1) { print 0; } else { print r; }
            var s = classify(input());
            if (s == -1) { print 0; } else { print s; }
        }
    """
    icfg = build(source)
    first = optimize(icfg)
    second = optimize(first.optimized)
    third = optimize(second.optimized, interprocedural=False)
    check_equivalent(icfg, third.optimized, [[1, -1], [-1, 1], [0, 0]])


def test_tight_duplication_limit_on_every_scenario():
    source = """
        proc classify(v) {
            if (v <= 0) { return -1; }
            return (unsigned) v;
        }
        proc main() {
            var i = 0;
            while (i < 4) {
                var r = classify(input());
                if (r == -1) { print 0; } else { print r; }
                i = i + 1;
            }
        }
    """
    icfg = build(source)
    for limit in (0, 1, 2, 3, 5, 8):
        report = optimize(icfg, limit=limit)
        check_equivalent(icfg, report.optimized,
                         [[1, -1, 2, -2], [0, 0, 0, 0]])
