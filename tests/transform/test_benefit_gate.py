"""The profile-guided benefit heuristic (paper §4's closing remark)."""

from tests.helpers import build

from repro.analysis import AnalysisConfig
from repro.interp import Workload, run_icfg
from repro.transform import (BranchOutcome, ICBEOptimizer, OptimizerOptions,
                             restructure_branch)
from repro.ir.nodes import BranchNode


# A correlated conditional that executes exactly once but needs real
# duplication: poor cost-effectiveness.
COLD_SOURCE = """
proc main() {
    var c = input();
    var x = 0;
    if (c > 0) { x = 1; }
    print c; print c; print c;
    if (x == 1) { print 1; }
    return 0;
}
"""

# The same correlation inside a hot loop: good cost-effectiveness.
HOT_SOURCE = """
proc main() {
    var c = input();
    var x = 0;
    if (c > 0) { x = 1; }
    var i = 0;
    while (i < 50) {
        if (x == 1) { print 1; } else { print 0; }
        i = i + 1;
    }
    return 0;
}
"""


def gated_outcome(source, min_benefit):
    icfg = build(source)
    profile = run_icfg(icfg, Workload([5])).profile
    branch = [b for b in icfg.branch_nodes() if "x == 1" in b.label()][0]
    result = restructure_branch(icfg, branch.id, AnalysisConfig(),
                                profile=profile,
                                min_benefit_per_node=min_benefit)
    return result.outcome


def test_cold_conditional_rejected_by_benefit_gate():
    assert gated_outcome(COLD_SOURCE, min_benefit=2.0) is \
        BranchOutcome.LOW_BENEFIT


def test_hot_conditional_passes_same_gate():
    assert gated_outcome(HOT_SOURCE, min_benefit=2.0) is \
        BranchOutcome.OPTIMIZED


def test_gate_disabled_when_profile_missing():
    icfg = build(COLD_SOURCE)
    branch = [b for b in icfg.branch_nodes() if "x == 1" in b.label()][0]
    result = restructure_branch(icfg, branch.id, AnalysisConfig(),
                                min_benefit_per_node=100.0)  # no profile
    assert result.applied


def test_pipeline_benefit_gate_reduces_growth():
    icfg = build(HOT_SOURCE + """
        // appended cold second procedure exercised once
    """.replace("//", "//"))
    profile = run_icfg(icfg, Workload([5])).profile
    free = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig())).optimize(icfg)
    gated = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(), profile=profile,
        min_benefit_per_node=1000.0)).optimize(icfg)
    # An absurdly demanding gate blocks everything.
    assert gated.optimized_count <= free.optimized_count
    assert gated.nodes_after <= free.nodes_after
    outcomes = {r.outcome for r in gated.records}
    assert BranchOutcome.LOW_BENEFIT in outcomes
