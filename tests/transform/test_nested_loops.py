"""Correlation spanning nested loops (paper §1: "our restructuring
takes advantage of correlation that spans nested loops")."""

import re

from tests.helpers import build, check_equivalent

from repro.analysis import AnalysisConfig
from repro.interp import Workload, run_icfg
from repro.ir.nodes import BranchNode
from repro.transform import ICBEOptimizer, OptimizerOptions


NESTED = """
proc main() {
    var mode = input();
    var flag = 0;
    if (mode > 0) { flag = 1; }
    var i = 0;
    while (i < 3) {
        var j = 0;
        while (j < 4) {
            if (flag == 1) { print i * 10 + j; } else { print -1; }
            j = j + 1;
        }
        i = i + 1;
    }
}
"""


def optimize(icfg):
    report = ICBEOptimizer(OptimizerOptions(
        config=AnalysisConfig(budget=100_000))).optimize(icfg)
    return report


def flag_test_executions(icfg, run):
    return sum(count for node_id, count in run.profile.node_counts.items()
               if isinstance(icfg.nodes.get(node_id), BranchNode)
               and "flag ==" in icfg.nodes[node_id].label())


def test_inner_test_eliminated_across_both_loops():
    icfg = build(NESTED)
    report = optimize(icfg)
    check_equivalent(icfg, report.optimized, [[5], [-5], [0]])
    for inputs in ([5], [-5]):
        run = run_icfg(report.optimized, Workload(inputs))
        assert flag_test_executions(report.optimized, run) == 0
    # At least the 12 inner-test executions disappeared (restructuring
    # may additionally specialise surrounding tests).
    before = run_icfg(icfg, Workload([5]))
    after = run_icfg(report.optimized, Workload([5]))
    assert (before.profile.executed_conditionals
            - after.profile.executed_conditionals) >= 12


def test_both_loop_nests_duplicated():
    icfg = build(NESTED)
    report = optimize(icfg)
    optimized = report.optimized

    def loop_tests(fragment):
        return [n for n in optimized.iter_nodes()
                if isinstance(n, BranchNode)
                and fragment in re.sub(r"\w+::", "", n.label())]

    # Two versions of the outer loop and of the inner loop, one per
    # known flag value (the paper's "two versions of a loop").
    assert len(loop_tests("i < 3")) == 2
    assert len(loop_tests("j < 4")) == 2
    assert len(loop_tests("flag ==")) == 0


def test_loop_carried_flag_reassignment_limits_split():
    """When the flag is recomputed inside the outer loop, correlation
    only spans the inner loop; the transformation must stay correct."""
    source = """
        proc main() {
            var i = 0;
            while (i < 3) {
                var flag = 0;
                if (input() > 0) { flag = 1; }
                var j = 0;
                while (j < 3) {
                    if (flag == 1) { print 1; } else { print 0; }
                    j = j + 1;
                }
                i = i + 1;
            }
        }
    """
    icfg = build(source)
    report = optimize(icfg)
    check_equivalent(icfg, report.optimized,
                     [[1, -1, 1], [0, 0, 0], [5, 5, 5]])
    run = run_icfg(report.optimized, Workload([1, -1, 1]))
    assert flag_test_executions(report.optimized, run) == 0
