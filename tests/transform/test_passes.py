"""The pass-manager pipeline and its shared analysis context."""

from tests.helpers import build

from repro.analysis import AnalysisConfig
from repro.analysis.context import AnalysisContext
from repro.ir import dump_icfg, verify_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions
from repro.transform.passes import (FinalValidatePass, PassManager,
                                    RestructurePass, SimplifyPass,
                                    build_default_pipeline)

CONFIG = AnalysisConfig(budget=100_000)

SOURCE = """
    global err = 0;
    proc may_fail(v) {
        if (v < 0) { err = 1; return 0; }
        err = 0;
        return v;
    }
    proc main() {
        var a = may_fail(input());
        if (err == 1) { print 1; }
        var b = may_fail(input());
        if (err == 1) { print 2; }
        if (err == 0) { print 3; }
    }
"""


def run(icfg, **kwargs):
    kwargs.setdefault("config", CONFIG)
    return ICBEOptimizer(OptimizerOptions(**kwargs)).optimize(icfg)


def test_default_pipeline_has_the_three_passes_in_order():
    passes = build_default_pipeline().passes
    assert [type(p) for p in passes] == [RestructurePass, SimplifyPass,
                                         FinalValidatePass]


def test_pass_preservation_declarations():
    assert RestructurePass.preserves == frozenset()
    assert SimplifyPass.preserves == frozenset(
        {AnalysisContext.SUMMARIES, AnalysisContext.MODREF})
    assert FinalValidatePass.preserves == AnalysisContext.ALL


def test_cache_on_and_off_agree_exactly():
    icfg = build(SOURCE)
    cached = run(icfg, analysis_cache=True)
    plain = run(icfg, analysis_cache=False)
    assert ([(r.branch_id, r.outcome) for r in cached.records]
            == [(r.branch_id, r.outcome) for r in plain.records])
    assert dump_icfg(cached.optimized) == dump_icfg(plain.optimized)
    verify_icfg(cached.optimized)


def test_cached_run_reports_cache_activity():
    icfg = build(SOURCE)
    report = run(icfg, analysis_cache=True)
    stats = report.cache
    assert stats.commits >= report.optimized_count
    assert stats.analyses_reused > 0
    assert stats.summary_lookups == stats.summary_hits + stats.summary_misses
    # Fruitless transactions never copy the graph back.
    fruitless = len(report.records) - report.optimized_count
    assert stats.restores_elided == fruitless


def test_uncached_run_reports_zero_cache_activity():
    icfg = build(SOURCE)
    report = run(icfg, analysis_cache=False)
    stats = report.cache
    assert stats.summary_lookups == 0
    assert stats.analyses_reused == 0
    assert stats.snapshot_reuses == 0
    assert stats.restores_elided == 0


def test_input_graph_is_never_mutated_despite_in_place_transactions():
    icfg = build(SOURCE)
    pristine = dump_icfg(icfg)
    generation = icfg.generation
    run(icfg, analysis_cache=True)
    assert dump_icfg(icfg) == pristine
    assert icfg.generation == generation


def test_simplify_commit_preserves_summaries():
    """Nop compaction's commit must not cost the summary cache (it
    declares SUMMARIES preserved), even though it dirties procedures."""
    icfg = build(SOURCE)
    report = run(icfg, analysis_cache=True, duplication_limit=0)
    # With splitting gated off entirely, nothing dirties the graph
    # before simplify, and simplify's own commit preserves summaries:
    # no summary is ever invalidated across the run.
    assert report.cache.summary_invalidated == 0
    assert report.optimized_count == 0
