"""Every shipped example must run clean (each asserts its own claims)."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), "examples should narrate what they show"


def test_at_least_four_examples_ship():
    assert len(EXAMPLES) >= 4
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
