"""Release-quality meta-tests: documentation and error hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = []
for module_info in pkgutil.walk_packages(repro.__path__,
                                         prefix="repro."):
    MODULES.append(module_info.name)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue
        yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ or module_name.endswith("__main__"), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_every_public_class_and_function_is_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = [name for name, member in _public_members(module)
                    if not inspect.getdoc(member)]
    assert not undocumented, (
        f"{module_name}: missing docstrings on {undocumented}")


def test_exception_hierarchy_is_rooted():
    from repro import errors
    roots = [errors.LexError, errors.ParseError, errors.SemanticError,
             errors.LoweringError, errors.VerificationError,
             errors.InterpreterError, errors.AnalysisError,
             errors.TransformError]
    for exc in roots:
        assert issubclass(exc, errors.ReproError)
    assert issubclass(errors.StepLimitExceeded, errors.InterpreterError)


def test_package_exports_match_all():
    missing = [name for name in repro.__all__
               if not hasattr(repro, name)]
    assert not missing
