"""The tutorial's demo program must behave exactly as documented."""

import pathlib
import re

from tests.helpers import build

from repro.analysis import AnalysisConfig, analyze_branch
from repro.interp import Workload, run_icfg
from repro.transform import ICBEOptimizer, OptimizerOptions

TUTORIAL = pathlib.Path(__file__).resolve().parent.parent / "docs" \
    / "TUTORIAL.md"


def demo_source():
    text = TUTORIAL.read_text()
    match = re.search(r"```c\n(.*?)```", text, re.DOTALL)
    assert match, "tutorial must contain the demo program"
    return match.group(1)


def test_demo_program_parses_and_runs():
    icfg = build(demo_source())
    result = run_icfg(icfg, Workload([53, 49, 7, 0]))
    assert result.status == "ok"
    assert result.output == [0, 6]  # bad byte prints 0; 5+1 = 6


def test_demo_recheck_is_fully_correlated_as_documented():
    icfg = build(demo_source())
    branch = next(b for b in icfg.branch_nodes() if "d == -1" in b.label())
    inter = analyze_branch(icfg, branch.id, AnalysisConfig())
    assert {a.kind for a in inter.branch_answers} == {"true", "false"}
    intra = analyze_branch(icfg, branch.id,
                           AnalysisConfig(interprocedural=False))
    assert {a.kind for a in intra.branch_answers} == {"undef"}


def test_demo_optimization_matches_documented_effect():
    icfg = build(demo_source())
    report = ICBEOptimizer(OptimizerOptions(
        duplication_limit=100)).optimize(icfg)
    workload = Workload([53, 49, 7, 0])
    before = run_icfg(icfg, workload)
    after = run_icfg(report.optimized, workload)
    assert after.observable == before.observable
    assert (after.profile.executed_conditionals
            < before.profile.executed_conditionals)
    # The documented surprise: the program shrinks.
    assert report.nodes_after < report.nodes_before
