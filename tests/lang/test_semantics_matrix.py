"""Exhaustive checks of MiniC's documented expression semantics.

docs/LANGUAGE.md makes precise promises (total division, C-style signs,
short-circuit vs eager logicals, cast range...); this module verifies
them by executing programs, not by unit-testing the evaluator — so the
lexer, parser, lowering, and interpreter are all on the hook.
"""

import pytest

from tests.helpers import run


def evaluate(expr_text, inputs=None):
    result = run(f"proc main() {{ print {expr_text}; }}", inputs)
    assert result.status == "ok", result.fault_message
    return result.output[0]


@pytest.mark.parametrize("a", [-7, -1, 0, 1, 7])
@pytest.mark.parametrize("b", [-3, -1, 0, 1, 3])
def test_division_matrix(a, b):
    expected = 0 if b == 0 else int(a / b)  # truncation toward zero
    assert evaluate(f"{a} / {b}") == expected


@pytest.mark.parametrize("a", [-7, -1, 0, 1, 7])
@pytest.mark.parametrize("b", [-3, -1, 0, 1, 3])
def test_modulo_matrix(a, b):
    if b == 0:
        expected = 0
    else:
        expected = abs(a) % abs(b)
        if a < 0:
            expected = -expected
    assert evaluate(f"{a} % {b}") == expected


def test_precedence_promises():
    assert evaluate("1 + 2 * 3") == 7
    assert evaluate("(1 + 2) * 3") == 9
    assert evaluate("10 - 4 - 3") == 3          # left associative
    assert evaluate("2 * 3 % 4") == 2           # same tier, left to right
    assert evaluate("1 < 2 && 2 < 1 || 1 == 1") == 1


def test_comparison_yields_zero_one():
    assert evaluate("5 > 3") == 1
    assert evaluate("5 < 3") == 0


def test_unsigned_cast_range_promise():
    for value in (-300, -1, 0, 5, 255, 256, 1000):
        low_byte = value & 0xFF
        assert evaluate(f"(unsigned) {value}") == low_byte


def test_shortcircuit_in_condition_skips_effects():
    # The right operand's input() must not run when the left decides.
    result = run("""
        proc main() {
            if (0 == 1 && input() == 1) { print -1; }
            print input();
        }
    """, [42])
    assert result.output == [42]


def test_eager_logical_in_expression_consumes_effects():
    result = run("""
        proc main() {
            var x = (0 == 1) && (input() == 1);
            print x;
            print input();
        }
    """, [42, 7])
    # input() ran inside the eager &&, so the next read sees 7.
    assert result.output == [0, 7]


def test_truthiness_of_bare_values():
    result = run("""
        proc main() {
            if (-5) { print 1; } else { print 0; }
            if (0)  { print 1; } else { print 0; }
        }
    """)
    assert result.output == [1, 0]


def test_fall_off_end_returns_zero():
    result = run("proc f() { print 1; } proc main() { print f(); }")
    assert result.output == [1, 0]


def test_globals_initialized_before_main():
    result = run("""
        global a = 2;
        global b;
        proc main() { print a; print b; }
    """)
    assert result.output == [2, 0]
