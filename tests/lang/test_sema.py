import pytest

from repro.errors import SemanticError
from repro.lang import parse_program


def check(source):
    parse_program(source, check=True)


def test_valid_program_passes():
    check("""
        global g = 1;
        proc helper(x) { return x + g; }
        proc main() { var y = helper(2); print y; }
    """)


def test_missing_main_rejected():
    with pytest.raises(SemanticError, match="main"):
        check("proc f() { return 0; }")


def test_main_with_params_rejected():
    with pytest.raises(SemanticError, match="main"):
        check("proc main(x) { return 0; }")


def test_duplicate_procedure_rejected():
    with pytest.raises(SemanticError, match="duplicate procedure"):
        check("proc f() { return 0; } proc f() { return 1; } "
              "proc main() { return 0; }")


def test_duplicate_global_rejected():
    with pytest.raises(SemanticError, match="duplicate global"):
        check("global g; global g; proc main() { return 0; }")


def test_duplicate_parameter_rejected():
    with pytest.raises(SemanticError, match="duplicate parameter"):
        check("proc f(a, a) { return 0; } proc main() { return 0; }")


def test_duplicate_local_rejected():
    with pytest.raises(SemanticError, match="duplicate local"):
        check("proc main() { var x; var x; }")


def test_local_shadowing_parameter_rejected():
    with pytest.raises(SemanticError, match="duplicate local"):
        check("proc f(a) { var a; return 0; } proc main() { return 0; }")


def test_undeclared_variable_rejected():
    with pytest.raises(SemanticError, match="undeclared"):
        check("proc main() { x = 1; }")


def test_undeclared_in_expression_rejected():
    with pytest.raises(SemanticError, match="undeclared"):
        check("proc main() { print missing; }")


def test_function_level_scoping_allows_use_across_branches():
    # Declared inside the then-branch, used after: function-level scope.
    check("""
        proc main() {
            var c = 1;
            if (c == 1) { var t = 5; } else { }
            print t;
        }
    """)


def test_local_may_shadow_global():
    check("global g; proc main() { var g = 1; print g; }")


def test_call_to_unknown_procedure_rejected():
    with pytest.raises(SemanticError, match="undefined procedure"):
        check("proc main() { ghost(); }")


def test_arity_mismatch_rejected():
    with pytest.raises(SemanticError, match="expects 2 argument"):
        check("proc f(a, b) { return a; } proc main() { var x = f(1); }")


def test_break_outside_loop_rejected():
    with pytest.raises(SemanticError, match="break"):
        check("proc main() { break; }")


def test_continue_outside_loop_rejected():
    with pytest.raises(SemanticError, match="continue"):
        check("proc main() { if (1 == 1) { continue; } }")


def test_break_inside_nested_if_in_loop_allowed():
    check("""
        proc main() {
            var i = 0;
            while (i < 3) {
                if (i == 1) { break; }
                i = i + 1;
            }
        }
    """)
