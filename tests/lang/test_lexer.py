import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_empty_source_yields_eof():
    assert kinds("") == [TokenKind.EOF]


def test_keywords_and_names_distinguished():
    tokens = tokenize("proc main while whileish _x")
    assert [t.kind for t in tokens[:-1]] == [
        TokenKind.PROC, TokenKind.NAME, TokenKind.WHILE, TokenKind.NAME,
        TokenKind.NAME]
    assert tokens[3].text == "whileish"


def test_integer_literal_value():
    token = tokenize("12345")[0]
    assert token.kind is TokenKind.INT
    assert token.int_value == 12345


def test_int_value_on_non_int_raises():
    with pytest.raises(ValueError):
        tokenize("abc")[0].int_value


def test_two_char_operators_win_over_one_char():
    assert kinds("== != <= >= && || =")[:-1] == [
        TokenKind.EQ, TokenKind.NE, TokenKind.LE, TokenKind.GE,
        TokenKind.AND, TokenKind.OR, TokenKind.ASSIGN]


def test_all_single_char_operators():
    assert kinds("( ) { } ; , < > + - * / % !")[:-1] == [
        TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.LBRACE,
        TokenKind.RBRACE, TokenKind.SEMI, TokenKind.COMMA, TokenKind.LT,
        TokenKind.GT, TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR,
        TokenKind.SLASH, TokenKind.PERCENT, TokenKind.NOT]


def test_line_comments_skipped():
    assert kinds("1 // two three\n2") == [TokenKind.INT, TokenKind.INT,
                                          TokenKind.EOF]


def test_block_comments_skipped_across_lines():
    assert kinds("1 /* a\nb*c */ 2") == [TokenKind.INT, TokenKind.INT,
                                         TokenKind.EOF]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_positions_are_one_based_and_track_newlines():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_identifier_starting_with_digit_rejected():
    with pytest.raises(LexError):
        tokenize("123abc")


def test_unexpected_character_rejected():
    with pytest.raises(LexError) as excinfo:
        tokenize("a $ b")
    assert "$" in str(excinfo.value)


def test_single_ampersand_is_an_error():
    with pytest.raises(LexError):
        tokenize("a & b")
