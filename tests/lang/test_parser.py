import pytest

from repro.errors import ParseError
from repro.lang import ast, parse_program


def parse(source, check=False):
    return parse_program(source, check=check)


MINIMAL = "proc main() { return 0; }"


def test_minimal_program():
    program = parse(MINIMAL)
    assert program.proc_names() == ("main",)
    assert isinstance(program.proc("main").body[0], ast.Return)


def test_globals_with_and_without_initializers():
    program = parse("global a; global b = 3; global c = -7;" + MINIMAL)
    assert [(g.name, g.init) for g in program.globals] == [
        ("a", 0), ("b", 3), ("c", -7)]


def test_parameters_parsed_in_order():
    program = parse("proc f(x, y, z) { return x; }" + MINIMAL)
    assert program.proc("f").params == ["x", "y", "z"]


def test_if_else_chain_desugars_to_nested_if():
    program = parse("""
        proc main() {
            var x = 1;
            if (x == 1) { print 1; }
            else if (x == 2) { print 2; }
            else { print 3; }
        }
    """)
    stmt = program.proc("main").body[1]
    assert isinstance(stmt, ast.If)
    nested = stmt.else_body[0]
    assert isinstance(nested, ast.If)
    assert isinstance(nested.else_body[0], ast.Print)


def test_operator_precedence_mul_over_add_over_cmp():
    program = parse("proc main() { var x = 1 + 2 * 3 < 10; }")
    decl = program.proc("main").body[0]
    cmp_expr = decl.init
    assert isinstance(cmp_expr, ast.Binary) and cmp_expr.op == "<"
    add = cmp_expr.left
    assert isinstance(add, ast.Binary) and add.op == "+"
    assert isinstance(add.right, ast.Binary) and add.right.op == "*"


def test_logical_operators_bind_looser_than_comparison():
    program = parse("proc main() { var x = 1 < 2 && 3 == 3 || 0 > 1; }")
    expr = program.proc("main").body[0].init
    assert isinstance(expr, ast.Binary) and expr.op == "||"
    assert expr.left.op == "&&"


def test_chained_comparison_rejected():
    with pytest.raises(ParseError):
        parse("proc main() { var x = 1 < 2 < 3; }")


def test_unary_minus_on_literal_folds():
    program = parse("proc main() { var x = -5; }")
    assert program.proc("main").body[0].init == ast.IntLit(value=-5)


def test_unary_not_kept():
    program = parse("proc main() { var x = 0; if (!x) { print 1; } }")
    cond = program.proc("main").body[1].cond
    assert isinstance(cond, ast.Unary) and cond.op == "!"


def test_unsigned_cast_parses():
    program = parse("proc main() { var x = (unsigned) 300; }")
    assert isinstance(program.proc("main").body[0].init, ast.UnsignedCast)


def test_parenthesized_expression_is_transparent():
    program = parse("proc main() { var x = (1 + 2) * 3; }")
    expr = program.proc("main").body[0].init
    assert expr.op == "*" and expr.left.op == "+"


def test_call_statement_and_call_expression():
    program = parse("""
        proc f(a) { return a; }
        proc main() { f(1); var x = f(2) + 1; }
    """)
    body = program.proc("main").body
    assert isinstance(body[0], ast.CallStmt)
    assert isinstance(body[1].init.left, ast.CallExpr)


def test_intrinsics_parse():
    program = parse("""
        proc main() {
            var p = alloc(2);
            store(p, input());
            var v = load(p + 1);
        }
    """)
    body = program.proc("main").body
    assert isinstance(body[0].init, ast.AllocExpr)
    assert isinstance(body[1], ast.StoreStmt)
    assert isinstance(body[1].value, ast.InputExpr)
    assert isinstance(body[2].init, ast.LoadExpr)


def test_break_continue_return_forms():
    program = parse("""
        proc main() {
            while (1) { break; }
            while (1) { continue; }
            return;
        }
    """)
    body = program.proc("main").body
    assert isinstance(body[0].body[0], ast.Break)
    assert isinstance(body[1].body[0], ast.Continue)
    assert body[2].value is None


def test_missing_semicolon_reports_position():
    with pytest.raises(ParseError) as excinfo:
        parse("proc main() { print 1 }")
    assert excinfo.value.line == 1


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse("proc main() { print 1;")


def test_garbage_at_top_level_rejected():
    with pytest.raises(ParseError):
        parse("flobble;")


def test_name_without_assign_or_call_rejected():
    with pytest.raises(ParseError):
        parse("proc main() { x; }")


def test_program_lookup_raises_for_unknown_proc():
    with pytest.raises(KeyError):
        parse(MINIMAL).proc("ghost")
