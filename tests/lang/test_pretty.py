from repro.lang import parse_program, pretty_print
from repro.lang.pretty import count_source_lines


ROUNDTRIP_SOURCES = [
    "proc main() { return 0; }",
    "global g = -3; proc main() { print g; }",
    """
    proc f(a, b) {
        var c = a * b - 2;
        if (c > 0 && a != b) { return c; } else { return -c; }
    }
    proc main() {
        var i = 0;
        while (i < 5) {
            if (i == 3) { break; }
            i = i + 1;
            continue;
        }
        print f(i, 2);
        return i;
    }
    """,
    """
    proc main() {
        var p = alloc(2);
        store(p, (unsigned) input());
        var v = load(p);
        print !v;
        print -v;
        return v % 3;
    }
    """,
]


def test_pretty_output_reparses_to_fixed_point():
    for source in ROUNDTRIP_SOURCES:
        first = pretty_print(parse_program(source))
        second = pretty_print(parse_program(first))
        assert first == second


def test_negative_literals_roundtrip():
    source = "proc main() { var x = -42; return -1; }"
    text = pretty_print(parse_program(source))
    assert "-42" in text
    reparsed = pretty_print(parse_program(text))
    assert reparsed == text


def test_else_branch_only_printed_when_present():
    text = pretty_print(parse_program(
        "proc main() { var x = 0; if (x == 0) { print 1; } }"))
    assert "else" not in text


def test_binary_operators_fully_parenthesized():
    text = pretty_print(parse_program("proc main() { var x = 1 + 2 * 3; }"))
    assert "(1 + (2 * 3))" in text


def test_count_source_lines_ignores_blank_lines():
    program = parse_program("global g;\n\nproc main() { return g; }")
    assert count_source_lines(program) == 4  # global, proc, return, brace
